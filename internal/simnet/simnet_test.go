package simnet

import (
	"testing"
	"testing/quick"

	"gridmon/internal/sim"
)

func lan(t *testing.T) (*sim.Kernel, *Network, *Node, *Node) {
	t.Helper()
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("hydra1", HydraNode())
	b := n.AddNode("hydra2", HydraNode())
	return k, n, a, b
}

func TestDuplicateNodePanics(t *testing.T) {
	k := sim.New(1)
	n := New(k)
	n.AddNode("x", HydraNode())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	n.AddNode("x", HydraNode())
}

func TestNodeLookup(t *testing.T) {
	_, n, a, _ := lan(t)
	if n.Node("hydra1") != a {
		t.Fatal("Node lookup failed")
	}
	if n.Node("nope") != nil {
		t.Fatal("missing node should be nil")
	}
}

func TestReliableDelivery(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Latency: sim.Millisecond, Reliable: true})
	var got []any
	var at sim.Time
	c.B().SetHandler(func(f Frame) {
		got = append(got, f.Payload)
		at = k.Now()
	})
	c.A().Send("hello", 1000)
	k.Run()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	// 1000 bytes at 100 Mbps = 80 µs serialization each side + 1 ms latency.
	want := sim.Millisecond + 2*80*sim.Microsecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	sent, delivered, dropped := c.Stats()
	if sent != 1 || delivered != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestBidirectional(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, LANOptions())
	gotA, gotB := 0, 0
	c.A().SetHandler(func(Frame) { gotA++ })
	c.B().SetHandler(func(Frame) { gotB++ })
	c.A().Send(1, 100)
	c.B().Send(2, 100)
	k.Run()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("gotA=%d gotB=%d", gotA, gotB)
	}
	if a.BytesOut() != 100 || a.BytesIn() != 100 {
		t.Fatalf("node a bytes = %d out, %d in", a.BytesOut(), a.BytesIn())
	}
}

func TestOrderPreservedUnderSerialization(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Latency: sim.Millisecond, Reliable: true})
	var got []int
	c.B().SetHandler(func(f Frame) { got = append(got, f.Payload.(int)) })
	for i := 0; i < 50; i++ {
		c.A().Send(i, 10000) // large frames force serialization queueing
	}
	k.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestSerializationSharesEgress(t *testing.T) {
	// Two connections from the same node share its egress bandwidth, so
	// the second frame is delayed by the first frame's wire time.
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a", HydraNode())
	b := n.AddNode("b", HydraNode())
	c := n.AddNode("c", HydraNode())
	c1 := n.Connect(a, b, ConnOptions{Reliable: true})
	c2 := n.Connect(a, c, ConnOptions{Reliable: true})
	var t1, t2 sim.Time
	c1.B().SetHandler(func(Frame) { t1 = k.Now() })
	c2.B().SetHandler(func(Frame) { t2 = k.Now() })
	c1.A().Send(1, 125000) // 10 ms of wire at 100 Mbps
	c2.A().Send(2, 125000)
	k.Run()
	if t1 != 20*sim.Millisecond { // 10ms egress + 10ms ingress at b
		t.Fatalf("t1 = %v", t1)
	}
	// Second frame waits 10 ms behind the first in a's egress queue.
	if t2 != 30*sim.Millisecond {
		t.Fatalf("t2 = %v", t2)
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a", NodeConfig{})
	b := n.AddNode("b", NodeConfig{})
	c := n.Connect(a, b, ConnOptions{Latency: sim.Second, Reliable: true})
	var at sim.Time
	c.B().SetHandler(func(Frame) { at = k.Now() })
	c.A().Send(nil, 1<<30)
	k.Run()
	if at != sim.Second {
		t.Fatalf("at = %v, want exactly the latency", at)
	}
}

func TestUnreliableLoss(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Latency: sim.Millisecond, LossProb: 0.5})
	got := 0
	c.B().SetHandler(func(Frame) { got++ })
	const total = 2000
	for i := 0; i < total; i++ {
		c.A().Send(i, 100)
	}
	k.Run()
	sent, delivered, dropped := c.Stats()
	if sent != total || delivered != uint64(got) || delivered+dropped != total {
		t.Fatalf("sent=%d delivered=%d dropped=%d got=%d", sent, delivered, dropped, got)
	}
	if got < total*4/10 || got > total*6/10 {
		t.Fatalf("delivered %d of %d with p=0.5", got, total)
	}
}

func TestReliableIgnoresLossProb(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Reliable: true, LossProb: 1.0})
	got := 0
	c.B().SetHandler(func(Frame) { got++ })
	for i := 0; i < 10; i++ {
		c.A().Send(i, 10)
	}
	k.Run()
	if got != 10 {
		t.Fatalf("reliable conn lost frames: %d/10", got)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Latency: sim.Second, Reliable: true})
	got := 0
	c.B().SetHandler(func(Frame) { got++ })
	c.A().Send(1, 10)
	k.At(500*sim.Millisecond, func() { c.Close() })
	k.Run()
	if got != 0 {
		t.Fatal("frame delivered after close")
	}
	if !c.Closed() {
		t.Fatal("Closed() = false")
	}
	c.A().Send(2, 10) // send after close is a silent no-op
	k.Run()
	if got != 0 {
		t.Fatal("send after close delivered")
	}
}

func TestNoHandlerCountsDrop(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, LANOptions())
	c.A().Send(1, 10)
	k.Run()
	_, delivered, dropped := c.Stats()
	if delivered != 0 || dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestJitterBounded(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, ConnOptions{Latency: sim.Millisecond, Jitter: sim.Millisecond, Reliable: true})
	var min, max sim.Time = 1 << 62, 0
	c.B().SetHandler(func(f Frame) {
		d := k.Now() - f.Sent
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	})
	for i := 0; i < 500; i++ {
		k.At(sim.Time(i)*sim.Second, func() { c.A().Send(i, 0) })
	}
	k.Run()
	if min < sim.Millisecond || max > 2*sim.Millisecond {
		t.Fatalf("latency range [%v, %v] outside [1ms, 2ms]", min, max)
	}
	if max-min < 500*sim.Microsecond {
		t.Fatalf("jitter too narrow: [%v, %v]", min, max)
	}
}

func TestLoopback(t *testing.T) {
	k, n, a, _ := lan(t)
	c := n.Connect(a, a, ConnOptions{Reliable: true})
	got := 0
	c.B().SetHandler(func(Frame) { got++ })
	c.A().Send(1, 10)
	k.Run()
	if got != 1 {
		t.Fatal("loopback delivery failed")
	}
}

func TestBadConnectPanics(t *testing.T) {
	k, n, a, _ := lan(t)
	_ = k
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil node did not panic")
			}
		}()
		n.Connect(a, nil, ConnOptions{})
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("bad loss prob did not panic")
		}
	}()
	n.Connect(a, a, ConnOptions{LossProb: 1.5})
}

func TestNegativeSizePanics(t *testing.T) {
	_, n, a, b := lan(t)
	c := n.Connect(a, b, LANOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	c.A().Send(nil, -1)
}

func TestNetworkStats(t *testing.T) {
	k, n, a, b := lan(t)
	c := n.Connect(a, b, LANOptions())
	c.B().SetHandler(func(Frame) {})
	for i := 0; i < 5; i++ {
		c.A().Send(i, 10)
	}
	k.Run()
	sent, delivered, dropped := n.Stats()
	if sent != 5 || delivered != 5 || dropped != 0 {
		t.Fatalf("network stats %d/%d/%d", sent, delivered, dropped)
	}
}

// Property: on a reliable connection every frame is delivered exactly once
// and in order, regardless of sizes and send times.
func TestPropertyReliableExactlyOnceInOrder(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.New(5)
		n := New(k)
		a := n.AddNode("a", HydraNode())
		b := n.AddNode("b", HydraNode())
		c := n.Connect(a, b, LANOptions())
		var got []int
		c.B().SetHandler(func(f Frame) { got = append(got, f.Payload.(int)) })
		for i, s := range sizes {
			c.A().Send(i, int(s))
		}
		k.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sent == delivered + dropped on unreliable connections.
func TestPropertyLossAccounting(t *testing.T) {
	f := func(count uint8, lossPct uint8) bool {
		k := sim.New(int64(count)*257 + int64(lossPct))
		n := New(k)
		a := n.AddNode("a", HydraNode())
		b := n.AddNode("b", HydraNode())
		p := float64(lossPct%101) / 100
		c := n.Connect(a, b, ConnOptions{Latency: sim.Millisecond, LossProb: p})
		c.B().SetHandler(func(Frame) {})
		for i := 0; i < int(count); i++ {
			c.A().Send(i, 64)
		}
		k.Run()
		sent, delivered, dropped := c.Stats()
		return sent == uint64(count) && delivered+dropped == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
