// Persistence seam for the R-GMA core's durable state: the schema
// (tables), producer resources with their tuple stores, and polling
// consumer resources. The core stays storage-agnostic — it emits
// mutation callbacks through the Journal interface (package rgmawal
// implements it over a write-ahead log) and exposes Restore*/
// DumpPersistent so a recovery layer can rebuild and snapshot the same
// state.
//
// What is durable and what is not: tables, producers (identity,
// retention configuration, retained tuples) and polling consumers
// (identity + query) persist; push-fed consumers (whose sink is a live
// transport connection) and the undrained buffers of polling continuous
// consumers do not — buffered tuples are in-flight deliveries, dropped
// at a crash exactly as the broker drops unacknowledged deliveries.

package rgmacore

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Journal observes the core's durable-state mutations. Creation and
// close callbacks fire after the mutation is installed; Inserted fires
// after the tuple is stored and before it streams, so a transport
// acknowledgement sent after Insert returns implies the record was
// appended (and, with fsync, durable). Callbacks for independent
// resources may fire concurrently; callbacks for one resource follow
// the caller's ordering. Implementations must not call back into the
// Core.
type Journal interface {
	// TableCreated records a new table's canonical CREATE TABLE text
	// (sqlmini.Table.CreateSQL). Identical re-creates are not journaled.
	TableCreated(sql string)
	// ProducerCreated records a producer resource with its pinned id and
	// effective (post-default) retention periods.
	ProducerCreated(id int64, table string, latestRetention, historyRetention sim.Time)
	// ProducerClosed records producer release.
	ProducerClosed(id int64)
	// Inserted records one stored tuple: the producer, the core-clock
	// insertion instant, and the INSERT text that produced it.
	Inserted(producerID int64, at sim.Time, sql string)
	// ConsumerCreated records a polling consumer (push-fed consumers are
	// connection-scoped and never journaled) with its pinned id.
	ConsumerCreated(id int64, query string, qtype rgma.QueryType)
	// ConsumerClosed records polling-consumer release.
	ConsumerClosed(id int64)
}

// SetJournal installs the mutation observer. Registration is atomic and
// takes effect for mutations that begin afterwards. Pass nil to detach.
func (c *Core) SetJournal(j Journal) {
	if j == nil {
		c.journal.Store(nil)
		return
	}
	c.journal.Store(&j)
}

func (c *Core) loadJournal() Journal {
	if p := c.journal.Load(); p != nil {
		return *p
	}
	return nil
}

// ---- Restore API ----
//
// The replay path: a recovery layer feeds journaled mutations back
// through these before the core serves transports. They apply the same
// state changes as the journaled operations but never re-journal, never
// stream to consumers, and never touch the service counters. Restored
// ids are pinned and the id allocator is bumped past them, so resources
// created after recovery cannot collide.

// RestoreTable replays a TableCreated record.
func (c *Core) RestoreTable(sql string) error {
	_, err := c.createTable(sql, false)
	return err
}

// RestoreProducer replays a ProducerCreated record with its original id.
func (c *Core) RestoreProducer(id int64, table string, latestRetention, historyRetention sim.Time) error {
	c.bumpNextID(id)
	_, err := c.addProducer(id, table, latestRetention, historyRetention, false)
	return err
}

// RestoreProducerClose replays a ProducerClosed record. A missing id is
// tolerated (a compacting snapshot may already have dropped it).
func (c *Core) RestoreProducerClose(id int64) {
	if err := c.closeProducer(id, false); err != nil && !errors.Is(err, ErrNotFound) {
		panic(err) // closeProducer only fails with ErrNotFound
	}
}

// RestoreInsert replays an Inserted record: the tuple is stored with its
// original insertion instant and does not stream (replayed continuous
// consumers start with empty buffers — buffered tuples are in-flight
// state, not durable state). A missing producer is tolerated.
func (c *Core) RestoreInsert(producerID int64, at sim.Time, sqlText string) error {
	st, err := sqlmini.Parse(sqlText)
	if err != nil {
		return err
	}
	ins, isInsert := st.(sqlmini.Insert)
	if !isInsert {
		return fmt.Errorf("rgma: expected INSERT")
	}
	p, exists := c.LookupProducer(producerID)
	if !exists {
		return nil
	}
	row, err := sqlmini.ReorderInsert(p.table, ins)
	if err != nil {
		return err
	}
	p.store.Insert(rgma.Tuple{Row: row, SentAt: at, InsertedAt: at})
	return nil
}

// RestoreConsumer replays a ConsumerCreated record with its original id.
func (c *Core) RestoreConsumer(id int64, query string, qtype rgma.QueryType) error {
	c.bumpNextID(id)
	_, err := c.addConsumer(id, query, qtype, nil, false)
	return err
}

// RestoreConsumerClose replays a ConsumerClosed record. A missing id is
// tolerated.
func (c *Core) RestoreConsumerClose(id int64) {
	if err := c.closeConsumer(id, false); err != nil && !errors.Is(err, ErrNotFound) {
		panic(err) // closeConsumer only fails with ErrNotFound
	}
}

// bumpNextID raises the id allocator to at least id.
func (c *Core) bumpNextID(id int64) {
	for {
		cur := c.nextID.Load()
		if id <= cur || c.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// SetClockOrigin restarts the core clock from origin: Now() returns
// origin plus wall time elapsed since the call. Recovery uses it to
// continue the clock past the newest replayed insertion instant, so
// replayed tuples age out under the same retention arithmetic they
// would have seen without the restart (a clock rewound to zero would
// make every replayed tuple appear to come from the future and never
// expire). Must be called while the core is quiescent.
func (c *Core) SetClockOrigin(origin sim.Time) {
	c.start = time.Now()
	c.clock = func() sim.Time { return origin + sim.Time(time.Since(c.start).Nanoseconds()) }
}

// ---- Dump API ----
//
// Snapshot accessors: a recovery layer re-emits the returned state as
// compacted records. The core must be quiescent for the dump to be a
// consistent cut — the daemons dump only during startup recovery and
// shutdown.

// ProducerDump is one producer's persistent state. Tuples is the
// store's retained content in replay order (rgma.TupleStore.Dump);
// re-inserting each with its InsertedAt stamp rebuilds the store.
type ProducerDump struct {
	ID               int64
	Table            string
	LatestRetention  sim.Time
	HistoryRetention sim.Time
	Tuples           []rgma.Tuple
}

// ConsumerDump is one polling consumer's persistent state.
type ConsumerDump struct {
	ID    int64
	Query string
	Type  rgma.QueryType
}

// PersistentState is a consistent cut of everything the core persists.
type PersistentState struct {
	Tables    []string // canonical CREATE TABLE texts, sorted
	Producers []ProducerDump
	Consumers []ConsumerDump
}

// DumpPersistent snapshots the core's durable state: table schemas in
// name order, producers and polling consumers in id order. Requires
// quiescence (see above).
func (c *Core) DumpPersistent() PersistentState {
	var st PersistentState
	for _, ts := range c.tables {
		ts.mu.RLock()
		for _, tab := range ts.tables {
			st.Tables = append(st.Tables, tab.CreateSQL())
		}
		ts.mu.RUnlock()
	}
	sort.Strings(st.Tables)
	for _, rs := range c.res {
		rs.mu.RLock()
		for _, p := range rs.producers {
			st.Producers = append(st.Producers, ProducerDump{
				ID:               p.id,
				Table:            p.tableName,
				LatestRetention:  p.latestRetention,
				HistoryRetention: p.historyRetention,
				Tuples:           p.store.Dump(),
			})
		}
		for _, cn := range rs.consumers {
			if cn.sink != nil {
				continue
			}
			st.Consumers = append(st.Consumers, ConsumerDump{ID: cn.id, Query: cn.rawQuery, Type: cn.qtype})
		}
		rs.mu.RUnlock()
	}
	sort.Slice(st.Producers, func(i, j int) bool { return st.Producers[i].ID < st.Producers[j].ID })
	sort.Slice(st.Consumers, func(i, j int) bool { return st.Consumers[i].ID < st.Consumers[j].ID })
	return st
}
