package rgmacore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/sim"
)

const testTableSQL = "CREATE TABLE g (genid INTEGER PRIMARY KEY, seq INTEGER, site CHAR(20))"

func mustCreateTable(t *testing.T, c *Core, sql string) {
	t.Helper()
	if _, err := c.CreateTable(sql); err != nil {
		t.Fatal(err)
	}
}

// TestCreateTableRecreateKeepsStreams is the regression test for the
// blind-overwrite bug: re-declaring an existing table with an identical
// schema must be a no-op, so resources created before the re-create
// (which hold the original *sqlmini.Table) still identity-match
// resources created after it. Pre-fix, the second CreateTable replaced
// the schema object and this consumer never received the insert.
func TestCreateTableRecreateKeepsStreams(t *testing.T) {
	c := New(Config{Shards: 4})
	mustCreateTable(t, c, testTableSQL)

	// Consumer created against the original schema object.
	cn, err := c.CreateConsumer("SELECT * FROM g", rgma.ContinuousQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An idempotent re-create (e.g. a second client joining and
	// declaring its tables defensively)...
	mustCreateTable(t, c, testTableSQL)
	// ...then a producer created after it.
	p, err := c.CreateProducer("g", sim.Second, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(p.ID(), "INSERT INTO g (genid, seq, site) VALUES (1, 1, 'aberdeen')"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pop(cn.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("consumer popped %d tuples after table re-create, want 1", len(got))
	}
	// And the old/new mix the other way: a consumer created after the
	// re-create still matches the original producer's store on pops.
	lat, err := c.CreateConsumer("SELECT * FROM g", rgma.LatestQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Pop(lat.ID()); err != nil || len(got) != 1 {
		t.Fatalf("latest pop across re-create = %v, %v", got, err)
	}
}

// TestCreateTableConflictingSchema: a re-create with a different schema
// must be refused (ErrConflict), not silently replace the table.
func TestCreateTableConflictingSchema(t *testing.T) {
	c := New(Config{Shards: 4})
	mustCreateTable(t, c, testTableSQL)
	_, err := c.CreateTable("CREATE TABLE g (genid INTEGER PRIMARY KEY, power DOUBLE PRECISION)")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting re-create: err = %v, want ErrConflict", err)
	}
	// The original schema must still be in force.
	if err := func() error {
		p, err := c.CreateProducer("g", sim.Second, sim.Second)
		if err != nil {
			return err
		}
		return c.Insert(p.ID(), "INSERT INTO g (genid, seq, site) VALUES (2, 2, 'dundee')")
	}(); err != nil {
		t.Fatalf("original schema unusable after rejected re-create: %v", err)
	}
}

// TestInsertPathRetentionSweep is the regression test for the
// unbounded-history bug: a producer serving only continuous consumers
// never reaches the latest/history read paths, which were the only
// callers of TupleStore.Purge — so history grew without bound under the
// paper's primary workload. The insert path must now sweep (amortized).
func TestInsertPathRetentionSweep(t *testing.T) {
	c := New(Config{Shards: 1})
	now := sim.Time(0)
	c.clock = func() sim.Time { return now }
	mustCreateTable(t, c, testTableSQL)
	// Continuous consumer only: nothing ever calls Latest/History.
	if _, err := c.CreateConsumer("SELECT * FROM g", rgma.ContinuousQuery, nil); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreateProducer("g", sim.Second, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 200
	for i := 0; i < inserts; i++ {
		now += 100 * sim.Millisecond
		stmt := fmt.Sprintf("INSERT INTO g (genid, seq, site) VALUES (%d, %d, 'a')", i, i)
		if err := c.Insert(p.ID(), stmt); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Store().Stats()
	if st.Purged == 0 {
		t.Fatalf("no retention sweep ran on the insert path: %+v", st)
	}
	// 1 s history retention at 10 inserts/s ≈ 10 live rows; allow slack
	// for the amortization interval. Pre-fix History == 200.
	if st.History > 40 {
		t.Fatalf("history grew to %d rows under a continuous-only workload (stats %+v)", st.History, st)
	}
}

// TestConsumerBufferCap is the regression test for the unbounded
// consumer buffer: an abandoned continuous consumer must hold at most
// MaxBuffered tuples, dropping the oldest, with the drops counted.
func TestConsumerBufferCap(t *testing.T) {
	c := New(Config{Shards: 2, MaxBuffered: 10})
	mustCreateTable(t, c, testTableSQL)
	cn, err := c.CreateConsumer("SELECT * FROM g", rgma.ContinuousQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreateProducer("g", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 100
	for i := 1; i <= inserts; i++ {
		stmt := fmt.Sprintf("INSERT INTO g (genid, seq, site) VALUES (%d, %d, 'a')", i, i)
		if err := c.Insert(p.ID(), stmt); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Pop(cn.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("buffered %d tuples, want cap 10", len(got))
	}
	// Drop-oldest: the survivors are the newest ten, in insert order.
	for i, tp := range got {
		if want := fmt.Sprintf("%d", inserts-9+i); tp.Row[0] != want {
			t.Fatalf("tuple %d = %v, want genid %s (newest retained, in order)", i, tp.Row, want)
		}
	}
	if cn.Dropped() != inserts-10 {
		t.Fatalf("consumer dropped = %d, want %d", cn.Dropped(), inserts-10)
	}
	if st := c.StatsSnapshot(); st.TuplesDropped != inserts-10 {
		t.Fatalf("stats TuplesDropped = %d, want %d", st.TuplesDropped, inserts-10)
	}
	// After draining, the buffer accepts tuples again without drops.
	if err := c.Insert(p.ID(), "INSERT INTO g (genid, seq, site) VALUES (500, 500, 'a')"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Pop(cn.ID()); len(got) != 1 || got[0].Row[0] != "500" {
		t.Fatalf("post-drain pop = %v", got)
	}
}

// TestRetentionSeconds pins the client-side rounding contract: round up
// to at least one whole second, reject non-positive periods.
func TestRetentionSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
		ok   bool
	}{
		{500 * time.Millisecond, 1, true},
		{time.Second, 1, true},
		{1100 * time.Millisecond, 2, true},
		{30 * time.Second, 30, true},
		{0, 0, false},
		{-time.Second, 0, false},
	}
	for _, tc := range cases {
		got, err := RetentionSeconds(tc.d)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("RetentionSeconds(%v) = %d, %v; want %d, ok=%v", tc.d, got, err, tc.want, tc.ok)
		}
	}
}

// TestPushFedConsumerRefusesPop: sink-backed continuous consumers are
// push-fed; popping them is a conflict, and the sink sees every tuple
// with the shared encode-once payload.
func TestPushFedConsumerRefusesPop(t *testing.T) {
	c := New(Config{Shards: 1})
	mustCreateTable(t, c, testTableSQL)
	var got [][]byte
	sink := func(id int64, st *Streamed) {
		got = append(got, st.Encoded(func(tp PopTuple) []byte { return []byte(tp.Row[0]) }))
	}
	cn, err := c.CreateConsumer("SELECT * FROM g", rgma.ContinuousQuery, sink)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreateProducer("g", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(p.ID(), "INSERT INTO g (genid, seq, site) VALUES (7, 7, 'a')"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "7" {
		t.Fatalf("sink saw %q", got)
	}
	if _, err := c.Pop(cn.ID()); !errors.Is(err, ErrConflict) {
		t.Fatalf("pop of push-fed consumer: err = %v, want ErrConflict", err)
	}
	// Sinks are rejected on request/response query types.
	if _, err := c.CreateConsumer("SELECT * FROM g", rgma.LatestQuery, sink); err == nil {
		t.Fatal("latest consumer with sink accepted")
	}
}
