// Package rgmacore is the transport-neutral R-GMA service core: the
// sharded schema/resource state machine that both real-network bindings
// wrap — internal/rgmahttp (JSON request/response, the gLite servlet
// baseline) and internal/rgmabin (persistent-connection binary framing
// with server-push continuous queries). It composes the shard-safe half
// of internal/rgma (Registry, TupleStore) with internal/sqlmini parsing
// and compiled WHERE predicates.
//
// # Concurrency
//
// Everything here is shard-safe: state is partitioned into lock
// domains, not handed to worker goroutines, so calls run on whatever
// transport goroutine made them. Two shard families exist — table
// shards (schema plus the per-table continuous-consumer and producer
// indexes, keyed by table-name hash) and resource shards
// (producer/consumer handles keyed by resource id) — plus a per-consumer
// buffer lock and the internally locked rgma.TupleStore and
// rgma.Registry. Producers inserting into different producer resources
// and consumers popping different consumers proceed fully in parallel.
//
// The hot read paths are lock-free by default: Insert's continuous-
// consumer scan and Pop's latest/history producer gather read a
// copy-on-write snapshot of the table shard's indexes published through
// an atomic pointer (tableSnap), so inserts into the *same* table never
// serialize on the shard lock either. Index mutations
// (create/close producer/consumer) still take the shard's write lock
// and republish the snapshot before releasing it.
// Config.LockedReadPath restores lock-held reads as the measured A/B
// baseline; Stats.ReadLockAcquisitions meters the difference.
//
// Ordering: a producer whose inserts are issued sequentially (each call
// returning before the next is made) streams to every continuous
// consumer in insert order, and its history reads in the same order.
// Only inserts issued concurrently for the *same* producer resource
// have no defined order (store append and consumer fan-out are separate
// critical sections). Inserts from different producers are never
// ordered relative to each other.
//
// # Continuous delivery
//
// A continuous consumer is either buffered (nil sink: matching tuples
// queue in a bounded drop-oldest buffer until Pop drains them — the
// polling transports' model) or push-fed (non-nil sink: the sink is
// invoked inline on the inserting goroutine for every match, and Pop is
// refused). Sinks must not block and must not call back into the Core
// for the same table (on the default snapshot read path they run with no
// core lock held; in LockedReadPath mode they run under the table
// shard's read lock).
package rgmacore

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/predindex"
	"gridmon/internal/rgma"
	"gridmon/internal/shardhash"
	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Sentinel error kinds transports map onto their status vocabulary
// (HTTP: 404/409; binary: error-frame codes). Anything else a Core
// method returns is a bad request (HTTP 400).
var (
	ErrNotFound = errors.New("rgma: not found")
	ErrConflict = errors.New("rgma: conflict")
)

// Default retention periods substituted when a producer is created with
// non-positive retention, matching the paper's test configuration
// (30 s latest, 1 min history).
const (
	DefaultLatestRetention  = 30 * sim.Second
	DefaultHistoryRetention = 60 * sim.Second
)

// DefaultMaxBuffered caps an un-popped buffered continuous consumer's
// queue. An abandoned poller then costs at most this many tuples, not
// the paper's §III.F unbounded-heap failure mode.
const DefaultMaxBuffered = 16384

// insertsPerSweep amortizes retention sweeps on the insert path: a
// producer's store is purged at least every insertsPerSweep inserts and
// whenever the sweep deadline (half the shorter retention period) has
// passed, so stores serving only continuous consumers — the paper's
// primary workload, which never touches the latest/history read paths —
// still shed expired history.
const insertsPerSweep = 64

// Config tunes a Core.
type Config struct {
	// Shards is the lock-domain count for the table and resource shard
	// families (0 = GOMAXPROCS). Shard counts do not change behaviour,
	// only contention.
	Shards int
	// MaxBuffered caps each buffered continuous consumer's undrained
	// tuples; when full the oldest tuple is dropped and counted. 0 means
	// DefaultMaxBuffered; negative means unlimited (the seed behaviour).
	MaxBuffered int
	// LockedReadPath restores the locked read paths as an A/B baseline
	// (the same pattern as broker.Config.LockedReadPath): Insert scans
	// the continuous-consumer index and Pop gathers the producer index
	// under the table shard's read lock, instead of the lock-free
	// copy-on-write snapshot. Behaviour is identical for any single
	// caller; only contention (and Stats.ReadLockAcquisitions) differs.
	LockedReadPath bool
	// LinearMatch disables the content-based matching index on the
	// snapshot insert path (same A/B-baseline pattern as
	// LockedReadPath): Insert evaluates every continuous consumer of
	// the table instead of only the candidates the predindex
	// discrimination index emits. Behaviour is identical for any caller
	// — candidates are a superset, visited in registration order — only
	// the MatchIndex* meters and the per-insert evaluation count
	// differ. The locked baseline never uses the index regardless.
	LinearMatch bool
}

// Core is the shared R-GMA service state.
type Core struct {
	tables      []*tableShard // table-name-hash lock domains
	res         []*resShard   // resource-id lock domains
	registry    *rgma.Registry
	nextID      atomic.Int64
	maxBuffered int
	lockedRead  bool // Config.LockedReadPath
	linearMatch bool // Config.LinearMatch

	// matchScratch pools the indexed insert path's per-call scratch
	// (candidate buffer + row-probe adapter), recycled across inserts.
	matchScratch sync.Pool

	// journal is the persistence seam (see journal.go); nil-by-default
	// keeps every mutation path at one atomic load when persistence is
	// off.
	journal atomic.Pointer[Journal]

	inserts        atomic.Uint64
	pops           atomic.Uint64
	tuplesStreamed atomic.Uint64
	tuplesPopped   atomic.Uint64
	tuplesDropped  atomic.Uint64
	readLockAcq    atomic.Uint64 // read-path shard-lock acquisitions (locked mode only)

	matchProgramEvals    atomic.Uint64
	matchIndexCandidates atomic.Uint64
	matchConsumersSkip   atomic.Uint64

	start time.Time
	// clock returns the service's notion of now (nanoseconds since
	// start, the domain TupleStore retention works in). Tests override
	// it to exercise retention without sleeping.
	clock func() sim.Time
}

// tableShard owns everything about the tables that hash to it: the
// schema entry, the table's continuous consumers (the insert-time
// streaming index) and its producers (the latest/history gather index),
// both in registration order.
type tableShard struct {
	mu         sync.RWMutex
	tables     map[string]*sqlmini.Table
	continuous map[string][]*Consumer
	producers  map[string][]*Producer

	// snap is the copy-on-write snapshot of the two read-path indexes,
	// published through an atomic pointer so Insert's consumer scan and
	// Pop's producer gather run with no shard lock at all (the broker's
	// snapshot.go pattern). Stored only under mu (write lock); loaded
	// without it. Index mutations are rare next to inserts, so each
	// mutation rebuilds the touched table's slices and shares the rest.
	snap atomic.Pointer[tableSnap]
}

// tableSnap is one shard's published read-path state. Maps, slices and
// indexes are immutable once stored (predindex.Index is shard-safe
// after Build).
type tableSnap struct {
	continuous map[string][]*Consumer
	producers  map[string][]*Producer
	// indexes holds, per table, the content-based matching index over
	// that table's continuous slice (seq i ↔ continuous[table][i]),
	// consulted by streamInsert. Absent for tables with no continuous
	// consumers, and empty when Config.LinearMatch disables indexing.
	indexes map[string]*predindex.Index
}

// refreshSnap republishes the shard's snapshot after a mutation of one
// table's index entries. Untouched tables share their slices with the
// previous snapshot generation; the mutated table's slices are cloned
// from the locked indexes (which are append/delete-mutated in place)
// and its matching index rebuilt from the consumers' cached keys.
// Write lock held — that is what single-files snapshot writers.
func (c *Core) refreshSnap(ts *tableShard, table string) {
	cur := ts.snap.Load()
	var curC map[string][]*Consumer
	var curP map[string][]*Producer
	var curI map[string]*predindex.Index
	if cur != nil {
		curC, curP, curI = cur.continuous, cur.producers, cur.indexes
	}
	next := &tableSnap{
		continuous: make(map[string][]*Consumer, len(curC)+1),
		producers:  make(map[string][]*Producer, len(curP)+1),
		indexes:    make(map[string]*predindex.Index, len(curI)+1),
	}
	for k, v := range curC {
		if k != table {
			next.continuous[k] = v
		}
	}
	for k, v := range curP {
		if k != table {
			next.producers[k] = v
		}
	}
	for k, v := range curI {
		if k != table {
			next.indexes[k] = v
		}
	}
	if cns := ts.continuous[table]; len(cns) > 0 {
		next.continuous[table] = slices.Clone(cns)
		if !c.linearMatch {
			keys := make([]predindex.Key, len(cns))
			for i, cn := range cns {
				keys[i] = cn.matchKey
			}
			next.indexes[table] = predindex.Build(keys)
		}
	}
	if ps := ts.producers[table]; len(ps) > 0 {
		next.producers[table] = slices.Clone(ps)
	}
	ts.snap.Store(next)
}

// resShard owns the resource handles whose ids hash to it.
type resShard struct {
	mu        sync.RWMutex
	producers map[int64]*Producer
	consumers map[int64]*Consumer
}

// New constructs a Core.
func New(cfg Config) *Core {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	maxBuffered := cfg.MaxBuffered
	if maxBuffered == 0 {
		maxBuffered = DefaultMaxBuffered
	}
	c := &Core{
		tables:      make([]*tableShard, cfg.Shards),
		res:         make([]*resShard, cfg.Shards),
		registry:    rgma.NewRegistrySharded(cfg.Shards),
		maxBuffered: maxBuffered,
		lockedRead:  cfg.LockedReadPath,
		linearMatch: cfg.LinearMatch,
		start:       time.Now(),
	}
	c.clock = func() sim.Time { return sim.Time(time.Since(c.start).Nanoseconds()) }
	for i := 0; i < cfg.Shards; i++ {
		c.tables[i] = &tableShard{
			tables:     make(map[string]*sqlmini.Table),
			continuous: make(map[string][]*Consumer),
			producers:  make(map[string][]*Producer),
		}
		c.res[i] = &resShard{
			producers: make(map[int64]*Producer),
			consumers: make(map[int64]*Consumer),
		}
	}
	return c
}

// NumShards reports the lock-domain count per shard family.
func (c *Core) NumShards() int { return len(c.tables) }

// TableShardOf reports which table shard a name routes to. Load-test
// topologies and benchmarks use it to spread (or concentrate) tables
// across lock domains, as broker.ShardOf does for destinations.
func (c *Core) TableShardOf(name string) int {
	if len(c.tables) == 1 {
		return 0
	}
	return int(shardhash.FNV1a(name) % uint32(len(c.tables)))
}

func (c *Core) tableShardFor(table string) *tableShard {
	return c.tables[c.TableShardOf(table)]
}

func (c *Core) resShardFor(id int64) *resShard {
	if len(c.res) == 1 {
		return c.res[0]
	}
	return c.res[uint64(id)%uint64(len(c.res))]
}

// Now returns the core's clock reading; TupleStore retention works in
// this domain.
func (c *Core) Now() sim.Time { return c.clock() }

// RegistryCounts reports registered producer and consumer records.
func (c *Core) RegistryCounts() (producers, consumers int) { return c.registry.Counts() }

// --- resources ---

// Producer is one producer resource: a tuple store bound to a table,
// plus the amortized-sweep bookkeeping.
type Producer struct {
	id        int64
	regID     int64
	tableName string
	table     *sqlmini.Table
	store     *rgma.TupleStore

	// Effective (post-default) retention periods, kept for persistence
	// dumps so a replayed producer purges identically.
	latestRetention  sim.Time
	historyRetention sim.Time

	// sweepInterval is half the shorter retention period: the deadline
	// cadence for insert-path purges.
	sweepInterval sim.Time
	sinceSweep    atomic.Uint32
	nextSweep     atomic.Int64
}

// ID returns the resource id.
func (p *Producer) ID() int64 { return p.id }

// Store exposes the producer's tuple store (tests and stats).
func (p *Producer) Store() *rgma.TupleStore { return p.store }

// maybeSweep runs the amortized insert-path retention sweep: purge when
// insertsPerSweep inserts have accumulated or the deadline passed.
// Purge is internally locked, so concurrent sweeps are merely redundant.
func (p *Producer) maybeSweep(now sim.Time) {
	if p.sinceSweep.Add(1) < insertsPerSweep && int64(now) < p.nextSweep.Load() {
		return
	}
	p.sinceSweep.Store(0)
	p.nextSweep.Store(int64(now + p.sweepInterval))
	p.store.Purge(now)
}

// Sink receives pushed tuples for one push-fed continuous consumer. It
// runs inline on the inserting goroutine — with no core lock held on the
// default snapshot read path, or under the table shard's read lock in
// LockedReadPath mode — so it must not block and must not call back
// into the Core.
type Sink func(consumerID int64, t *Streamed)

// Consumer is one consumer resource.
type Consumer struct {
	id        int64
	regID     int64
	query     sqlmini.Select
	rawQuery  string           // original SELECT text, journaled for replay
	prog      *sqlmini.Program // query.Where compiled against table
	matchKey  predindex.Key    // required-conjunct key of query.Where
	table     *sqlmini.Table
	tableName string
	qtype     rgma.QueryType

	sink Sink // non-nil: push-fed; nil: buffered

	// Buffered-delivery state: a bounded ring. Until the cap is reached
	// buf grows by append; at the cap the oldest slot is overwritten
	// (drop-oldest), so an abandoned poller holds at most max tuples.
	mu      sync.Mutex
	buf     []PopTuple
	ringAt  int // index of the oldest tuple once the ring is full
	dropped uint64
}

// ID returns the resource id.
func (cn *Consumer) ID() int64 { return cn.id }

// Dropped reports tuples this consumer lost to the buffer cap.
func (cn *Consumer) Dropped() uint64 {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.dropped
}

// push appends one streamed tuple under the consumer's buffer lock,
// dropping the oldest buffered tuple when the cap is reached.
func (cn *Consumer) push(t PopTuple, max int, coreDropped *atomic.Uint64) {
	cn.mu.Lock()
	if max <= 0 || len(cn.buf) < max {
		cn.buf = append(cn.buf, t)
	} else {
		cn.buf[cn.ringAt] = t
		cn.ringAt = (cn.ringAt + 1) % len(cn.buf)
		cn.dropped++
		coreDropped.Add(1)
	}
	cn.mu.Unlock()
}

// drain empties the buffer in arrival order under the buffer lock.
func (cn *Consumer) drain() []PopTuple {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if len(cn.buf) == 0 {
		return nil
	}
	var out []PopTuple
	if cn.ringAt == 0 {
		out = cn.buf
	} else {
		out = make([]PopTuple, 0, len(cn.buf))
		out = append(out, cn.buf[cn.ringAt:]...)
		out = append(out, cn.buf[:cn.ringAt]...)
	}
	cn.buf, cn.ringAt = nil, 0
	return out
}

// PopTuple is one delivered tuple; cells are SQL literal forms. The
// JSON field names are the rgmahttp wire contract.
type PopTuple struct {
	Row        []string `json:"row"`
	InsertedAt int64    `json:"insertedAtNs"`
}

func toPop(t rgma.Tuple) PopTuple {
	cells := make([]string, len(t.Row))
	for i, v := range t.Row {
		cells[i] = v.String()
	}
	return PopTuple{Row: cells, InsertedAt: int64(t.InsertedAt)}
}

// Streamed is one insert's delivery to however many continuous
// consumers matched it: the cell rendering is computed once per insert,
// and Encoded caches a transport encoding computed at most once across
// all sinks (the rgmabin binding's encode-once path, the same pattern
// as message.CachedEncoding).
type Streamed struct {
	Tuple PopTuple

	once sync.Once
	enc  []byte
}

// Encoded returns encode(Tuple), computing it on the first call and
// returning the cached bytes to every later caller. All callers must
// pass the same encode function; the returned slice is shared and must
// not be mutated.
func (s *Streamed) Encoded(encode func(PopTuple) []byte) []byte {
	s.once.Do(func() { s.enc = encode(s.Tuple) })
	return s.enc
}

// --- schema ---

// CreateTable declares a table from a CREATE TABLE statement and
// returns its name. Re-creating a table with an identical schema is a
// no-op (the handle every existing producer and consumer holds stays
// valid); re-creating with a different schema is ErrConflict. The seed
// silently replaced the schema object, orphaning every resource created
// earlier: their table-identity checks stopped matching resources
// created later and streaming went dark for any old/new mix.
func (c *Core) CreateTable(sql string) (string, error) {
	return c.createTable(sql, true)
}

func (c *Core) createTable(sql string, journal bool) (string, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return "", err
	}
	ct, isCreate := st.(sqlmini.CreateTable)
	if !isCreate {
		return "", fmt.Errorf("rgma: expected CREATE TABLE")
	}
	name := ct.Table.Name
	ts := c.tableShardFor(name)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if old, ok := ts.tables[name]; ok {
		if sameSchema(old, &ct.Table) {
			return name, nil
		}
		return "", fmt.Errorf("%w: table %q already exists with a different schema", ErrConflict, name)
	}
	ts.tables[name] = &ct.Table
	if journal {
		if j := c.loadJournal(); j != nil {
			// The canonical rendering, not the client's text: replay must
			// reconstruct a schema that compares sameSchema-equal.
			j.TableCreated(ct.Table.CreateSQL())
		}
	}
	return name, nil
}

func sameSchema(a, b *sqlmini.Table) bool {
	return a.Name == b.Name && slices.Equal(a.Columns, b.Columns)
}

// --- producers ---

// CreateProducer allocates a producer resource with memory storage on
// an existing table. Non-positive retention selects the defaults.
func (c *Core) CreateProducer(table string, latestRetention, historyRetention sim.Time) (*Producer, error) {
	return c.addProducer(c.nextID.Add(1), table, latestRetention, historyRetention, true)
}

func (c *Core) addProducer(id int64, table string, latestRetention, historyRetention sim.Time, journal bool) (*Producer, error) {
	if latestRetention <= 0 {
		latestRetention = DefaultLatestRetention
	}
	if historyRetention <= 0 {
		historyRetention = DefaultHistoryRetention
	}
	ts := c.tableShardFor(table)
	ts.mu.RLock()
	tab, exists := ts.tables[table]
	ts.mu.RUnlock()
	if !exists {
		return nil, fmt.Errorf("%w: no such table %q", ErrNotFound, table)
	}
	p := &Producer{
		id:               id,
		tableName:        table,
		table:            tab,
		store:            rgma.NewTupleStore(tab, latestRetention, historyRetention),
		latestRetention:  latestRetention,
		historyRetention: historyRetention,
		sweepInterval:    min(latestRetention, historyRetention) / 2,
	}
	if p.sweepInterval <= 0 {
		p.sweepInterval = 1
	}
	p.regID = c.registry.RegisterProducer(rgma.ProducerEntry{Kind: rgma.PrimaryKind, Table: table})
	rs := c.resShardFor(p.id)
	rs.mu.Lock()
	rs.producers[p.id] = p
	rs.mu.Unlock()
	ts.mu.Lock()
	ts.producers[table] = append(ts.producers[table], p)
	c.refreshSnap(ts, table)
	ts.mu.Unlock()
	if journal {
		if j := c.loadJournal(); j != nil {
			j.ProducerCreated(p.id, table, latestRetention, historyRetention)
		}
	}
	return p, nil
}

// LookupProducer resolves a producer resource id.
func (c *Core) LookupProducer(id int64) (*Producer, bool) {
	sh := c.resShardFor(id)
	sh.mu.RLock()
	p, ok := sh.producers[id]
	sh.mu.RUnlock()
	return p, ok
}

// CloseProducer releases a producer resource.
func (c *Core) CloseProducer(id int64) error {
	return c.closeProducer(id, true)
}

func (c *Core) closeProducer(id int64, journal bool) error {
	rs := c.resShardFor(id)
	rs.mu.Lock()
	p, exists := rs.producers[id]
	if exists {
		delete(rs.producers, id)
	}
	rs.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: no such producer %d", ErrNotFound, id)
	}
	c.registry.UnregisterProducerFrom(p.tableName, p.regID)
	ts := c.tableShardFor(p.tableName)
	ts.mu.Lock()
	ts.producers[p.tableName] = removeHandle(ts.producers[p.tableName], p)
	c.refreshSnap(ts, p.tableName)
	ts.mu.Unlock()
	if journal {
		if j := c.loadJournal(); j != nil {
			j.ProducerClosed(id)
		}
	}
	return nil
}

// removeHandle deletes one handle from an index slice; slices.Delete
// zeroes the vacated tail slot, so the handle does not leak.
func removeHandle[T comparable](hs []T, h T) []T {
	if i := slices.Index(hs, h); i >= 0 {
		return slices.Delete(hs, i, i+1)
	}
	return hs
}

// Insert parses one SQL INSERT, stores the tuple, runs the amortized
// retention sweep, and streams the tuple to the table's matching
// continuous consumers (buffered or push-fed). The cell rendering and
// any transport encoding happen at most once per insert regardless of
// how many consumers match.
func (c *Core) Insert(producerID int64, sqlText string) error {
	st, err := sqlmini.Parse(sqlText)
	if err != nil {
		return err
	}
	ins, isInsert := st.(sqlmini.Insert)
	if !isInsert {
		return fmt.Errorf("rgma: expected INSERT")
	}
	p, exists := c.LookupProducer(producerID)
	if !exists {
		return fmt.Errorf("%w: no such producer %d", ErrNotFound, producerID)
	}
	row, err := sqlmini.ReorderInsert(p.table, ins)
	if err != nil {
		return err
	}
	now := c.clock()
	tuple := rgma.Tuple{Row: row, SentAt: now, InsertedAt: now}
	p.store.Insert(tuple)
	c.inserts.Add(1)
	if j := c.loadJournal(); j != nil {
		// The client's original text: replay re-parses and reorders it
		// against the same schema, reproducing the stored row exactly.
		// Appending before streaming means a transport ack sent after
		// Insert returns implies the tuple is journaled.
		j.Inserted(producerID, now, sqlText)
	}
	p.maybeSweep(now)
	// Stream to matching continuous consumers immediately (the network
	// bindings do not model the gLite streaming delay; the simulator
	// covers that behaviour). The table shard's index narrows the scan
	// to this table's continuous consumers; the compiled predicate
	// decides per consumer; the one Streamed value is shared across all
	// of them. On the default lock-free path the consumer list comes
	// from the shard's copy-on-write snapshot — no shard lock is taken,
	// so concurrent inserts into one table never serialize here (sinks
	// are non-blocking and the buffered ring has its own lock). The
	// LockedReadPath baseline scans the live index under the read lock.
	ts := c.tableShardFor(p.tableName)
	var cns []*Consumer
	if c.lockedRead {
		// The locked baseline never uses the matching index: it predates
		// the snapshot machinery that builds one, and keeping it linear
		// preserves it as the measured pre-index A/B reference.
		c.readLockAcq.Add(1)
		ts.mu.RLock()
		cns = ts.continuous[p.tableName]
		c.streamInsert(cns, nil, p, row, tuple)
		ts.mu.RUnlock()
		return nil
	}
	var idx *predindex.Index
	if snap := ts.snap.Load(); snap != nil {
		cns = snap.continuous[p.tableName]
		idx = snap.indexes[p.tableName]
	}
	c.streamInsert(cns, idx, p, row, tuple)
	return nil
}

// rowScratch is the pooled per-insert scratch of the indexed stream
// path: the candidate buffer and the probe adapter live in one pooled
// struct so handing &sc.probe to the index costs no allocation.
type rowScratch struct {
	buf   []int32
	probe rowProbe
}

// rowProbe adapts a table row to the index's attribute-probe interface.
type rowProbe struct {
	tab *sqlmini.Table
	row sqlmini.Row
}

func (p *rowProbe) ProbeAttr(attr string) (predindex.Value, bool) {
	return sqlmini.ProbeValue(p.tab, p.row, attr)
}

// streamInsert fans one inserted tuple out to the table's continuous
// consumers. Called with the consumer list pinned either by the shard's
// read lock (locked mode, idx nil) or by snapshot immutability
// (lock-free mode, idx non-nil unless LinearMatch or no consumers).
//
// Consumers in cns are registered against p's table by construction:
// addConsumer files each consumer under its table name, the shard
// snapshot keys consumer lists by that same name, and CreateTable never
// replaces a live *Table (identical re-creates no-op, conflicting ones
// error), so cn.table == p.table holds for every entry and is not
// re-checked here. (Pop keeps its parallel check because it crosses
// producer and consumer handles supplied by the caller.)
func (c *Core) streamInsert(cns []*Consumer, idx *predindex.Index, p *Producer, row sqlmini.Row, tuple rgma.Tuple) {
	var streamed *Streamed
	deliver := func(cn *Consumer) {
		if streamed == nil {
			streamed = &Streamed{Tuple: toPop(tuple)}
		}
		if cn.sink != nil {
			cn.sink(cn.id, streamed)
		} else {
			cn.push(streamed.Tuple, c.maxBuffered, &c.tuplesDropped)
		}
		c.tuplesStreamed.Add(1)
	}
	if idx == nil {
		if len(cns) > 0 {
			c.matchProgramEvals.Add(uint64(len(cns)))
		}
		for _, cn := range cns {
			if cn.prog.Matches(row) {
				deliver(cn)
			}
		}
		return
	}
	// Indexed path: evaluate only the candidate consumers the
	// discrimination index emits (a superset of the true matchers,
	// seq-sorted, so visit order equals registration order and delivery
	// is bit-identical to the linear scan).
	sc, _ := c.matchScratch.Get().(*rowScratch)
	if sc == nil {
		sc = &rowScratch{}
	}
	sc.probe.tab = p.table
	sc.probe.row = row
	cands := idx.Candidates(&sc.probe, sc.buf[:0])
	for _, ci := range cands {
		if cn := cns[ci]; cn.prog.Matches(row) {
			deliver(cn)
		}
	}
	if n := len(cands); n > 0 {
		c.matchProgramEvals.Add(uint64(n))
		c.matchIndexCandidates.Add(uint64(n))
	}
	if skipped := len(cns) - len(cands); skipped > 0 {
		c.matchConsumersSkip.Add(uint64(skipped))
	}
	sc.probe.tab = nil
	sc.probe.row = nil
	sc.buf = cands[:0]
	c.matchScratch.Put(sc)
}

// --- consumers ---

// ParseQueryType maps a transport's query-type token onto the rgma
// enumeration ("" defaults to continuous, as the seed HTTP API did).
func ParseQueryType(s string) (rgma.QueryType, error) {
	switch s {
	case "", "continuous":
		return rgma.ContinuousQuery, nil
	case "latest":
		return rgma.LatestQuery, nil
	case "history":
		return rgma.HistoryQuery, nil
	}
	return 0, fmt.Errorf("rgma: unknown query type %q", s)
}

// CreateConsumer installs a SELECT query of the given type. A non-nil
// sink makes a continuous consumer push-fed: every matching insert
// invokes the sink inline and Pop is refused. Sinks on non-continuous
// consumers are rejected (latest/history are request/response on every
// transport).
func (c *Core) CreateConsumer(query string, qtype rgma.QueryType, sink Sink) (*Consumer, error) {
	return c.addConsumer(c.nextID.Add(1), query, qtype, sink, true)
}

func (c *Core) addConsumer(id int64, query string, qtype rgma.QueryType, sink Sink, journal bool) (*Consumer, error) {
	sel, err := rgma.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	if sink != nil && qtype != rgma.ContinuousQuery {
		return nil, fmt.Errorf("rgma: %v queries are request/response, not push-fed", qtype)
	}
	ts := c.tableShardFor(sel.Table)
	ts.mu.RLock()
	tab, exists := ts.tables[sel.Table]
	ts.mu.RUnlock()
	if !exists {
		return nil, fmt.Errorf("%w: no such table %q", ErrNotFound, sel.Table)
	}
	cn := &Consumer{
		id:        id,
		query:     sel,
		rawQuery:  query,
		prog:      sel.Compiled(tab),
		matchKey:  sqlmini.RequiredKey(sel.Where),
		table:     tab,
		tableName: sel.Table,
		qtype:     qtype,
		sink:      sink,
	}
	cn.regID = c.registry.RegisterConsumer(rgma.ConsumerEntry{Table: sel.Table})
	rs := c.resShardFor(cn.id)
	rs.mu.Lock()
	rs.consumers[cn.id] = cn
	rs.mu.Unlock()
	if qtype == rgma.ContinuousQuery {
		ts.mu.Lock()
		ts.continuous[sel.Table] = append(ts.continuous[sel.Table], cn)
		c.refreshSnap(ts, sel.Table)
		ts.mu.Unlock()
	}
	if journal && sink == nil {
		// Push-fed consumers are bound to a live transport connection —
		// their sink dies with the process — so only polling (buffered or
		// latest/history) consumers are journaled.
		if j := c.loadJournal(); j != nil {
			j.ConsumerCreated(cn.id, query, qtype)
		}
	}
	return cn, nil
}

// LookupConsumer resolves a consumer resource id.
func (c *Core) LookupConsumer(id int64) (*Consumer, bool) {
	sh := c.resShardFor(id)
	sh.mu.RLock()
	cn, ok := sh.consumers[id]
	sh.mu.RUnlock()
	return cn, ok
}

// Pop reads a consumer: a buffered continuous consumer's queued stream,
// or a latest/history gather over the table's producers (registration
// order, via the table shard's index). Push-fed consumers are refused —
// their tuples travel through the sink.
func (c *Core) Pop(consumerID int64) ([]PopTuple, error) {
	cn, exists := c.LookupConsumer(consumerID)
	if !exists {
		return nil, fmt.Errorf("%w: no such consumer %d", ErrNotFound, consumerID)
	}
	c.pops.Add(1)
	var out []PopTuple
	switch cn.qtype {
	case rgma.ContinuousQuery:
		if cn.sink != nil {
			return nil, fmt.Errorf("%w: consumer %d is push-fed; tuples arrive via its stream", ErrConflict, consumerID)
		}
		out = cn.drain()
	case rgma.LatestQuery, rgma.HistoryQuery:
		// The gather list was always copied out before reading stores
		// (each store locks internally), so the snapshot path changes
		// nothing semantically — it just skips the shard lock.
		ts := c.tableShardFor(cn.tableName)
		var producers []*Producer
		if c.lockedRead {
			c.readLockAcq.Add(1)
			ts.mu.RLock()
			producers = append([]*Producer(nil), ts.producers[cn.tableName]...)
			ts.mu.RUnlock()
		} else if snap := ts.snap.Load(); snap != nil {
			producers = snap.producers[cn.tableName]
		}
		now := c.clock()
		for _, p := range producers {
			if p.table != cn.table {
				continue
			}
			var tuples []rgma.Tuple
			if cn.qtype == rgma.LatestQuery {
				tuples = p.store.LatestCompiled(now, cn.prog)
			} else {
				tuples = p.store.HistoryCompiled(now, cn.prog)
			}
			for _, t := range tuples {
				out = append(out, toPop(t))
			}
		}
	}
	c.tuplesPopped.Add(uint64(len(out)))
	return out, nil
}

// CloseConsumer releases a consumer resource; continuous consumers stop
// receiving streams.
func (c *Core) CloseConsumer(id int64) error {
	return c.closeConsumer(id, true)
}

func (c *Core) closeConsumer(id int64, journal bool) error {
	rs := c.resShardFor(id)
	rs.mu.Lock()
	cn, exists := rs.consumers[id]
	if exists {
		delete(rs.consumers, id)
	}
	rs.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: no such consumer %d", ErrNotFound, id)
	}
	c.registry.UnregisterConsumerFrom(cn.tableName, cn.regID)
	if cn.qtype == rgma.ContinuousQuery {
		ts := c.tableShardFor(cn.tableName)
		ts.mu.Lock()
		ts.continuous[cn.tableName] = removeHandle(ts.continuous[cn.tableName], cn)
		c.refreshSnap(ts, cn.tableName)
		ts.mu.Unlock()
	}
	if journal && cn.sink == nil {
		if j := c.loadJournal(); j != nil {
			j.ConsumerClosed(id)
		}
	}
	return nil
}

// --- stats ---

// Stats is the core's atomic counter snapshot.
type Stats struct {
	Producers      int
	Consumers      int
	Inserts        uint64
	Pops           uint64
	TuplesStreamed uint64
	TuplesPopped   uint64
	TuplesDropped  uint64
	// ReadLockAcquisitions counts table-shard lock acquisitions taken by
	// the Insert/Pop read paths purely to read the routing indexes —
	// zero on the default snapshot path, one per insert and per
	// latest/history pop in the LockedReadPath baseline.
	ReadLockAcquisitions uint64
	// MatchProgramEvals counts compiled WHERE evaluations on the insert
	// stream path: one per continuous consumer visited. Indexed mode
	// visits only index candidates, so this is the meter the matching
	// index exists to shrink. MatchIndexCandidates counts candidates the
	// index emitted (equal to MatchProgramEvals in indexed mode, zero
	// otherwise); MatchConsumersSkipped counts consumers the index
	// proved could not match and never visited. TuplesStreamed is
	// mode-independent — the index only skips consumers whose predicate
	// could not return TRUE.
	MatchProgramEvals     uint64
	MatchIndexCandidates  uint64
	MatchConsumersSkipped uint64
}

// StatsSnapshot reads the counters; safe from any goroutine.
func (c *Core) StatsSnapshot() Stats {
	p, cn := c.registry.Counts()
	return Stats{
		Producers:      p,
		Consumers:      cn,
		Inserts:        c.inserts.Load(),
		Pops:           c.pops.Load(),
		TuplesStreamed: c.tuplesStreamed.Load(),
		TuplesPopped:   c.tuplesPopped.Load(),
		TuplesDropped:  c.tuplesDropped.Load(),

		ReadLockAcquisitions: c.readLockAcq.Load(),

		MatchProgramEvals:     c.matchProgramEvals.Load(),
		MatchIndexCandidates:  c.matchIndexCandidates.Load(),
		MatchConsumersSkipped: c.matchConsumersSkip.Load(),
	}
}

// RetentionSeconds converts a client-requested retention period to the
// whole seconds the create-producer protocol carries, rounding UP so a
// sub-second request becomes 1 second rather than silently truncating
// to 0 — which the server would replace with its 30 s/60 s defaults.
// Non-positive periods are an error: a client that wants the server
// defaults asks for them by not overriding the retention at all.
func RetentionSeconds(d time.Duration) (int, error) {
	if d <= 0 {
		return 0, fmt.Errorf("rgma: retention period must be positive, got %v", d)
	}
	secs := int((d + time.Second - 1) / time.Second)
	return secs, nil
}

// RetentionFromSeconds converts the protocol's whole-second retention
// to the sim.Time domain the stores work in (0 stays 0, selecting the
// server defaults).
func RetentionFromSeconds(sec uint32) sim.Time { return sim.Time(sec) * sim.Second }

// QueryTypeName is the transport token for a query type (inverse of
// ParseQueryType).
func QueryTypeName(q rgma.QueryType) string {
	return strings.ToLower(q.String())
}
