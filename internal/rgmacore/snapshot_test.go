package rgmacore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gridmon/internal/rgma"
	"gridmon/internal/sim"
)

// Tests for the lock-free (snapshot) read paths: Insert's continuous-
// consumer scan and Pop's latest/history producer gather. Mirrors the
// obligations of internal/broker's snapshot_test.go: snapshot routing
// must be observably identical to locked routing for any single-caller
// operation sequence, survive concurrent index churn under -race, and
// the ReadLockAcquisitions meter must prove which path ran.

// clearReadLocks zeroes the stats fields that legitimately differ
// across read-path and match modes — the lock meter and the matching-
// index meters. Everything else, TuplesStreamed above all, must match
// exactly: the index may only skip consumers whose predicate could not
// have matched.
func clearReadLocks(s Stats) Stats {
	s.ReadLockAcquisitions = 0
	s.MatchProgramEvals = 0
	s.MatchIndexCandidates = 0
	s.MatchConsumersSkipped = 0
	return s
}

// TestCoreSnapshotLockedEquivalenceRandomized drives identical
// randomized operation sequences — table declares, producer and
// consumer create/close churn (all query types), inserts, pops —
// through a snapshot-path core and a locked-path core from a single
// goroutine, comparing every pop result and error as it happens and the
// full stats at the end. Any index mutation missing its refreshSnap
// shows up as a pop divergence.
func TestCoreSnapshotLockedEquivalenceRandomized(t *testing.T) {
	runCoreEquivalence(t, func(cfg *Config) {}, func(cfg *Config) {
		cfg.LockedReadPath = true
	})
}

// runCoreEquivalence drives the randomized operation storm through two
// cores differing only by the given config mutations and requires
// identical observable behaviour (pop results, errors, stats modulo
// clearReadLocks). Shared by the snapshot-vs-locked and
// indexed-vs-linear-match suites.
func runCoreEquivalence(t *testing.T, mutA, mutB func(*Config)) {
	t.Helper()
	tables := []string{"ta", "tb", "tc"}
	queries := []string{
		"SELECT * FROM %s",
		"SELECT * FROM %s WHERE seq < 50",
		"SELECT * FROM %s WHERE seq >= 50",
		"SELECT * FROM %s WHERE site = 'aberdeen'",
	}
	qtypes := []rgma.QueryType{rgma.ContinuousQuery, rgma.LatestQuery, rgma.HistoryQuery}

	for seed := int64(1); seed <= 5; seed++ {
		var now sim.Time
		mk := func(mutate func(*Config)) *Core {
			cfg := Config{Shards: 4}
			mutate(&cfg)
			c := New(cfg)
			c.clock = func() sim.Time { return now }
			return c
		}
		cSnap, cLock := mk(mutA), mk(mutB)
		both := func(fn func(c *Core) error) error {
			errS, errL := fn(cSnap), fn(cLock)
			if (errS == nil) != (errL == nil) {
				t.Fatalf("seed %d: snapshot err %v, locked err %v", seed, errS, errL)
			}
			return errS
		}
		for _, tab := range tables {
			if err := both(func(c *Core) error {
				_, err := c.CreateTable(fmt.Sprintf(
					"CREATE TABLE %s (genid INTEGER PRIMARY KEY, seq INTEGER, site CHAR(20))", tab))
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}

		rng := rand.New(rand.NewSource(seed))
		var producers, consumers []int64
		for op := 0; op < 600; op++ {
			now += sim.Time(rng.Intn(50)) * sim.Millisecond
			switch r := rng.Intn(20); {
			case r < 3: // create a producer (sometimes default retention)
				tab := tables[rng.Intn(len(tables))]
				ret := sim.Time(rng.Intn(3)) * sim.Second
				var id int64
				if err := both(func(c *Core) error {
					p, err := c.CreateProducer(tab, ret, ret)
					if err == nil {
						id = p.ID()
					}
					return err
				}); err == nil {
					producers = append(producers, id)
				}
			case r < 5: // close a producer
				if len(producers) == 0 {
					continue
				}
				i := rng.Intn(len(producers))
				id := producers[i]
				producers = append(producers[:i], producers[i+1:]...)
				both(func(c *Core) error { return c.CloseProducer(id) })
			case r < 9: // create a consumer (any query type)
				q := fmt.Sprintf(queries[rng.Intn(len(queries))], tables[rng.Intn(len(tables))])
				qt := qtypes[rng.Intn(len(qtypes))]
				var id int64
				if err := both(func(c *Core) error {
					cn, err := c.CreateConsumer(q, qt, nil)
					if err == nil {
						id = cn.ID()
					}
					return err
				}); err == nil {
					consumers = append(consumers, id)
				}
			case r < 11: // close a consumer
				if len(consumers) == 0 {
					continue
				}
				i := rng.Intn(len(consumers))
				id := consumers[i]
				consumers = append(consumers[:i], consumers[i+1:]...)
				both(func(c *Core) error { return c.CloseConsumer(id) })
			case r < 14: // pop a consumer, comparing the delivered tuples
				if len(consumers) == 0 {
					continue
				}
				id := consumers[rng.Intn(len(consumers))]
				gotS, errS := cSnap.Pop(id)
				gotL, errL := cLock.Pop(id)
				if (errS == nil) != (errL == nil) {
					t.Fatalf("seed %d op %d: pop err %v vs %v", seed, op, errS, errL)
				}
				if !reflect.DeepEqual(gotS, gotL) {
					t.Fatalf("seed %d op %d: pop of %d diverged\nsnapshot: %v\nlocked:   %v",
						seed, op, id, gotS, gotL)
				}
			default: // insert through a random live producer
				if len(producers) == 0 {
					continue
				}
				id := producers[rng.Intn(len(producers))]
				stmt := fmt.Sprintf(
					"INSERT INTO %s (genid, seq, site) VALUES (%d, %d, '%s')",
					tables[rng.Intn(len(tables))], rng.Intn(20), rng.Intn(100),
					[]string{"aberdeen", "dundee"}[rng.Intn(2)])
				both(func(c *Core) error { return c.Insert(id, stmt) })
			}
		}

		ss, sl := clearReadLocks(cSnap.StatsSnapshot()), clearReadLocks(cLock.StatsSnapshot())
		if ss != sl {
			t.Fatalf("seed %d: A stats %+v != B %+v", seed, ss, sl)
		}
		if !cSnap.lockedRead {
			if got := cSnap.StatsSnapshot().ReadLockAcquisitions; got != 0 {
				t.Fatalf("seed %d: snapshot core took %d read-path locks", seed, got)
			}
		}
	}
}

// TestCoreReadPathLockMeters pins the meter contract: the snapshot path
// records zero read-path lock acquisitions; the locked baseline records
// exactly one per insert and one per latest/history pop (continuous
// drains touch only the consumer's own buffer lock in both modes).
func TestCoreReadPathLockMeters(t *testing.T) {
	run := func(locked bool) uint64 {
		c := New(Config{Shards: 2, LockedReadPath: locked})
		mustCreateTable(t, c, testTableSQL)
		p, err := c.CreateProducer("g", sim.Second, sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		cont, err := c.CreateConsumer("SELECT * FROM g", rgma.ContinuousQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := c.CreateConsumer("SELECT * FROM g", rgma.LatestQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		const inserts, pops = 40, 10
		for i := 0; i < inserts; i++ {
			stmt := fmt.Sprintf("INSERT INTO g (genid, seq, site) VALUES (%d, %d, 'a')", i, i)
			if err := c.Insert(p.ID(), stmt); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < pops; i++ {
			if _, err := c.Pop(lat.ID()); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Pop(cont.ID()); err != nil {
				t.Fatal(err)
			}
		}
		return c.StatsSnapshot().ReadLockAcquisitions
	}
	if got := run(false); got != 0 {
		t.Fatalf("snapshot mode took %d read-path locks, want 0", got)
	}
	if got, want := run(true), uint64(40+10); got != want {
		t.Fatalf("locked mode recorded %d read-path locks, want %d", got, want)
	}
}

// TestCoreSnapshotChurnEquivalence is the concurrent storm: goroutines
// churn producers and continuous consumers (create, pop, close) while
// inserters hammer the same tables, once per read-path mode. Delivery
// during the storm is inherently racy in both modes, so phase 1 asserts
// safety only (no races under -race, clean teardown). Then the storm
// quiesces — every phase-1 resource closed — and a deterministic probe
// set over fresh producers must pop identical tuples in both modes,
// proving the churned-up snapshots converged to the locked index state.
func TestCoreSnapshotChurnEquivalence(t *testing.T) {
	const (
		churners  = 4
		inserters = 4
		stormOps  = 200
		stormMsgs = 150
		probeMsgs = 100
	)
	tables := []string{"t0", "t1", "t2", "t3"}
	queries := []string{
		"SELECT * FROM %s",
		"SELECT * FROM %s WHERE seq < 50",
		"SELECT * FROM %s WHERE seq >= 50",
	}

	run := func(mutate func(*Config)) map[int][]PopTuple {
		cfg := Config{Shards: 4}
		mutate(&cfg)
		locked := cfg.LockedReadPath
		c := New(cfg)
		c.clock = func() sim.Time { return 0 }
		for _, tab := range tables {
			mustCreateTable(t, c, fmt.Sprintf(
				"CREATE TABLE %s (genid INTEGER PRIMARY KEY, seq INTEGER, site CHAR(20))", tab))
		}

		// --- Phase 1: index churn under concurrent inserting.
		var wg sync.WaitGroup
		for g := 0; g < churners; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				var cns []int64
				for op := 0; op < stormOps; op++ {
					switch rng.Intn(8) {
					case 0, 1, 2: // create a continuous consumer
						q := fmt.Sprintf(queries[rng.Intn(len(queries))], tables[rng.Intn(len(tables))])
						cn, err := c.CreateConsumer(q, rgma.ContinuousQuery, nil)
						if err != nil {
							t.Error(err)
							return
						}
						cns = append(cns, cn.ID())
					case 3, 4: // close one
						if len(cns) == 0 {
							continue
						}
						i := rng.Intn(len(cns))
						if err := c.CloseConsumer(cns[i]); err != nil {
							t.Error(err)
							return
						}
						cns = append(cns[:i], cns[i+1:]...)
					case 5: // producer index churn: create, insert once, close
						p, err := c.CreateProducer(tables[rng.Intn(len(tables))], sim.Second, sim.Second)
						if err != nil {
							t.Error(err)
							return
						}
						stmt := fmt.Sprintf("INSERT INTO %s (genid, seq, site) VALUES (%d, %d, 'churn')",
							p.tableName, rng.Intn(20), rng.Intn(100))
						if err := c.Insert(p.ID(), stmt); err != nil {
							t.Error(err)
							return
						}
						if err := c.CloseProducer(p.ID()); err != nil {
							t.Error(err)
							return
						}
					default: // pop one
						if len(cns) == 0 {
							continue
						}
						if _, err := c.Pop(cns[rng.Intn(len(cns))]); err != nil {
							t.Error(err)
							return
						}
					}
				}
				for _, id := range cns {
					if err := c.CloseConsumer(id); err != nil {
						t.Error(err)
					}
				}
			}(g)
		}
		for g := 0; g < inserters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(2000 + g)))
				tab := tables[g%len(tables)]
				p, err := c.CreateProducer(tab, sim.Second, sim.Second)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < stormMsgs; i++ {
					stmt := fmt.Sprintf("INSERT INTO %s (genid, seq, site) VALUES (%d, %d, 'storm')",
						tab, rng.Intn(20), rng.Intn(100))
					if err := c.Insert(p.ID(), stmt); err != nil {
						t.Error(err)
						return
					}
				}
				if err := c.CloseProducer(p.ID()); err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()

		// Quiesced: every storm resource is closed, so the latest/history
		// gathers below see only phase-2 producers and the continuous
		// probes buffer only phase-2 inserts.
		if p, cn := c.RegistryCounts(); p != 0 || cn != 0 {
			t.Fatalf("locked=%v: %d producers, %d consumers survived the storm", locked, p, cn)
		}

		// --- Phase 2: deterministic probe over the quiesced core.
		type probeSpec struct {
			query string
			qtype rgma.QueryType
		}
		specs := []probeSpec{
			{"SELECT * FROM t0", rgma.ContinuousQuery},
			{"SELECT * FROM t0 WHERE seq < 50", rgma.ContinuousQuery},
			{"SELECT * FROM t1 WHERE seq >= 50", rgma.ContinuousQuery},
			{"SELECT * FROM t2", rgma.ContinuousQuery},
			{"SELECT * FROM t0 WHERE seq < 25", rgma.LatestQuery},
			{"SELECT * FROM t1", rgma.HistoryQuery},
		}
		var probes []*Consumer
		for _, s := range specs {
			cn, err := c.CreateConsumer(s.query, s.qtype, nil)
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, cn)
		}
		prods := make(map[string]*Producer, len(tables))
		for _, tab := range tables {
			p, err := c.CreateProducer(tab, sim.Second, sim.Second)
			if err != nil {
				t.Fatal(err)
			}
			prods[tab] = p
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < probeMsgs; i++ {
			tab := tables[rng.Intn(len(tables))]
			stmt := fmt.Sprintf("INSERT INTO %s (genid, seq, site) VALUES (%d, %d, 'probe')",
				tab, i, rng.Intn(100))
			if err := c.Insert(prods[tab].ID(), stmt); err != nil {
				t.Fatal(err)
			}
		}
		got := make(map[int][]PopTuple)
		for i, cn := range probes {
			out, err := c.Pop(cn.ID())
			if err != nil {
				t.Fatal(err)
			}
			got[i] = out
		}
		if !locked {
			if rl := c.StatsSnapshot().ReadLockAcquisitions; rl != 0 {
				t.Fatalf("snapshot mode took %d read-path shard locks", rl)
			}
		}
		return got
	}

	snap := run(func(cfg *Config) {})
	lock := run(func(cfg *Config) { cfg.LockedReadPath = true })
	if !reflect.DeepEqual(snap, lock) {
		t.Fatalf("post-churn probe pops diverge:\nsnapshot: %v\nlocked:   %v", snap, lock)
	}

	// Same storm, matching index on vs off: the storm phase races
	// concurrent per-table index rebuilds against indexed inserts under
	// -race; the quiesced probes must pop identically.
	linear := run(func(cfg *Config) { cfg.LinearMatch = true })
	if !reflect.DeepEqual(snap, linear) {
		t.Fatalf("post-churn probe pops diverge:\nindexed: %v\nlinear:  %v", snap, linear)
	}
}
