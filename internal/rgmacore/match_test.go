package rgmacore

import (
	"fmt"
	"testing"

	"gridmon/internal/rgma"
	"gridmon/internal/sim"
)

// Tests for the content-based matching index on the insert stream path.

// TestCoreMatchIndexLinearEquivalenceRandomized drives the randomized
// operation storm through an indexed core and a LinearMatch core (both
// on the snapshot read path): every pop result and the final stats —
// TuplesStreamed above all — must be identical; only the Match* meters
// (zeroed by clearReadLocks) may differ.
func TestCoreMatchIndexLinearEquivalenceRandomized(t *testing.T) {
	runCoreEquivalence(t, func(cfg *Config) {}, func(cfg *Config) {
		cfg.LinearMatch = true
	})
}

// TestCoreMatchIndexMeters pins the index's observable contract on a
// hot table with many disjoint equality WHEREs: indexed mode evaluates
// only the candidate consumers per insert (here exactly one), while
// LinearMatch evaluates all of them; both stream identically.
func TestCoreMatchIndexMeters(t *testing.T) {
	const consumers = 64
	run := func(linear bool) Stats {
		c := New(Config{Shards: 2, LinearMatch: linear})
		mustCreateTable(t, c, "CREATE TABLE hot (genid INTEGER PRIMARY KEY, site CHAR(20))")
		p, err := c.CreateProducer("hot", sim.Second, sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < consumers; i++ {
			q := fmt.Sprintf("SELECT * FROM hot WHERE site = 'c%d'", i)
			if _, err := c.CreateConsumer(q, rgma.ContinuousQuery, nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < consumers; i++ {
			stmt := fmt.Sprintf("INSERT INTO hot (genid, site) VALUES (%d, 'c%d')", i, i)
			if err := c.Insert(p.ID(), stmt); err != nil {
				t.Fatal(err)
			}
		}
		return c.StatsSnapshot()
	}

	idx, lin := run(false), run(true)
	if idx.TuplesStreamed != consumers || lin.TuplesStreamed != consumers {
		t.Fatalf("streamed: indexed %d, linear %d, want %d each", idx.TuplesStreamed, lin.TuplesStreamed, consumers)
	}
	if want := uint64(consumers * consumers); lin.MatchProgramEvals != want {
		t.Fatalf("linear MatchProgramEvals = %d, want %d", lin.MatchProgramEvals, want)
	}
	if want := uint64(consumers); idx.MatchProgramEvals != want {
		t.Fatalf("indexed MatchProgramEvals = %d, want %d (one candidate per insert)", idx.MatchProgramEvals, want)
	}
	if idx.MatchIndexCandidates != idx.MatchProgramEvals {
		t.Fatalf("MatchIndexCandidates %d != MatchProgramEvals %d", idx.MatchIndexCandidates, idx.MatchProgramEvals)
	}
	if want := uint64(consumers * (consumers - 1)); idx.MatchConsumersSkipped != want {
		t.Fatalf("MatchConsumersSkipped = %d, want %d", idx.MatchConsumersSkipped, want)
	}
	if lin.MatchIndexCandidates != 0 || lin.MatchConsumersSkipped != 0 {
		t.Fatalf("linear mode moved index meters: %+v", lin)
	}
}

// TestTableIdentityPinned pins the invariant streamInsert's dropped
// table re-check relied on: a table's *Table value is never replaced
// once created — re-declaring the identical schema is a no-op returning
// the same pointer, and a conflicting declaration errors. Consumers and
// producers registered under one table name therefore always share one
// table identity.
func TestTableIdentityPinned(t *testing.T) {
	c := New(Config{Shards: 2})
	const ddl = "CREATE TABLE pin (genid INTEGER PRIMARY KEY, seq INTEGER)"
	t1, err := c.CreateTable(ddl)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.CreateTable(ddl)
	if err != nil {
		t.Fatalf("identical re-create: %v", err)
	}
	if t1 != t2 {
		t.Fatal("identical re-create returned a different *Table — streamInsert's identity assumption broken")
	}
	if _, err := c.CreateTable("CREATE TABLE pin (genid INTEGER PRIMARY KEY, other CHAR(8))"); err == nil {
		t.Fatal("conflicting re-create succeeded — streamInsert's identity assumption broken")
	}

	p, err := c.CreateProducer("pin", sim.Second, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := c.CreateConsumer("SELECT * FROM pin", rgma.ContinuousQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.table != cn.table {
		t.Fatal("producer and consumer of one table hold different *Table values")
	}
}
