package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Tests for the subscription index: the indexed publish path must be
// observably identical to the pre-index linear scan (preserved as
// Config.LegacyLinearScan) across publish / unsubscribe / durable
// interleavings — same per-subscription delivery sequences, same stats.

func newIndexedAndLegacy(t *testing.T) (*Broker, *fakeEnv, *Broker, *fakeEnv) {
	t.Helper()
	envI := newFakeEnv(0)
	cfgI := DefaultConfig("b1")
	bI := New(envI, cfgI)
	envL := newFakeEnv(0)
	cfgL := DefaultConfig("b1")
	cfgL.LegacyLinearScan = true
	bL := New(envL, cfgL)
	return bI, envI, bL, envL
}

// deliveredIDs extracts, per subscription, the ordered message IDs
// delivered on a connection.
func deliveredIDs(env *fakeEnv, c ConnID) map[int64][]string {
	out := make(map[int64][]string)
	for _, f := range env.sent[c] {
		if d, ok := f.(*wire.Deliver); ok {
			out[d.SubID] = append(out[d.SubID], d.Msg.ID)
		}
	}
	return out
}

func publishOn(b *Broker, c ConnID, id string, dest message.Destination, props map[string]message.Value) {
	m := message.NewText("payload")
	m.ID = id
	m.Dest = dest
	for k, v := range props {
		m.SetProperty(k, v)
	}
	b.OnFrame(c, wire.Publish{Seq: 1, Msg: m})
}

func TestIndexSelectorGrouping(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("power")
	for i := ConnID(1); i <= 7; i++ {
		mustOpen(t, b, i)
	}
	// Three subscribers share one selector, two have no selector, one has
	// a constant-true selector (fast path), one a distinct selector.
	subscribe(t, b, env, 1, 10, topic, "id < 100")
	subscribe(t, b, env, 2, 20, topic, "id < 100")
	subscribe(t, b, env, 3, 30, topic, "id < 100")
	subscribe(t, b, env, 4, 40, topic, "")
	subscribe(t, b, env, 5, 50, topic, "1 = 1") // folds to constant TRUE
	subscribe(t, b, env, 6, 60, topic, "id >= 100")

	if got := b.TopicSubscribers("power"); got != 6 {
		t.Fatalf("TopicSubscribers = %d, want 6", got)
	}
	// Two distinct selector programs: "id < 100" and "id >= 100".
	if got := b.TopicSelectorGroups("power"); got != 2 {
		t.Fatalf("TopicSelectorGroups = %d, want 2", got)
	}

	publishOn(b, 7, "m1", topic, map[string]message.Value{"id": message.Int(5)})
	for _, c := range []ConnID{1, 2, 3, 4, 5} {
		if n := len(env.deliveries(c)); n != 1 {
			t.Fatalf("conn %d got %d deliveries, want 1", c, n)
		}
	}
	if n := len(env.deliveries(6)); n != 0 {
		t.Fatalf("conn 6 got %d deliveries, want 0", n)
	}
	// The whole "id >= 100" group was rejected with one evaluation.
	if got := b.Stats().SelectorRejected; got != 1 {
		t.Fatalf("SelectorRejected = %d, want 1", got)
	}

	publishOn(b, 7, "m2", topic, map[string]message.Value{"id": message.Int(500)})
	if n := len(env.deliveries(6)); n != 1 {
		t.Fatalf("conn 6 got %d deliveries, want 1", n)
	}
	// Now the three-member "id < 100" group was rejected: 1 + 3 = 4.
	if got := b.Stats().SelectorRejected; got != 4 {
		t.Fatalf("SelectorRejected = %d, want 4", got)
	}
}

func TestIndexUnsubscribeMaintainsGroups(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("power")
	interest := []string{}
	b.SetInterestFunc(func(name string, add bool) {
		interest = append(interest, fmt.Sprintf("%s:%v", name, add))
	})
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 10, topic, "id < 100")
	subscribe(t, b, env, 1, 11, topic, "id < 100")
	subscribe(t, b, env, 1, 12, topic, "")

	b.OnFrame(1, wire.Unsubscribe{SubID: 10})
	if got := b.TopicSubscribers("power"); got != 2 {
		t.Fatalf("after unsub: TopicSubscribers = %d, want 2", got)
	}
	if got := b.TopicSelectorGroups("power"); got != 1 {
		t.Fatalf("after unsub: groups = %d, want 1", got)
	}
	b.OnFrame(1, wire.Unsubscribe{SubID: 11})
	if got := b.TopicSelectorGroups("power"); got != 0 {
		t.Fatalf("after group drained: groups = %d, want 0", got)
	}
	// Remaining fast subscription still receives.
	publishOn(b, 2, "m1", topic, nil)
	if got := deliveredIDs(env, 1)[12]; !reflect.DeepEqual(got, []string{"m1"}) {
		t.Fatalf("fast sub deliveries = %v", got)
	}
	b.OnFrame(1, wire.Unsubscribe{SubID: 12})
	if want := []string{"power:true", "power:false"}; !reflect.DeepEqual(interest, want) {
		t.Fatalf("interest events = %v, want %v", interest, want)
	}
	if got := b.TopicSubscribers("power"); got != 0 {
		t.Fatalf("TopicSubscribers = %d, want 0", got)
	}
}

func TestIndexDurableReattach(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("grid")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	b.OnFrame(1, wire.Subscribe{SubID: 10, Dest: topic, Selector: "id < 100", Durable: true, DurableName: "d1"})

	// Live delivery while attached.
	publishOn(b, 2, "m1", topic, map[string]message.Value{"id": message.Int(1)})
	// Disconnect: durable buffers matching messages only.
	b.OnConnClose(1)
	publishOn(b, 2, "m2", topic, map[string]message.Value{"id": message.Int(2)})
	publishOn(b, 2, "m3", topic, map[string]message.Value{"id": message.Int(200)}) // rejected
	publishOn(b, 2, "m4", topic, map[string]message.Value{"id": message.Int(4)})

	// Reattach under a new connection: backlog drains in order.
	mustOpen(t, b, 3)
	b.OnFrame(3, wire.Subscribe{SubID: 30, Dest: topic, Selector: "id < 100", Durable: true, DurableName: "d1"})
	if got := deliveredIDs(env, 3)[30]; !reflect.DeepEqual(got, []string{"m2", "m4"}) {
		t.Fatalf("drained backlog = %v, want [m2 m4]", got)
	}

	// Changing the topic recreates the durable and reindexes it.
	b.OnConnClose(3)
	publishOn(b, 2, "m5", topic, map[string]message.Value{"id": message.Int(5)})
	mustOpen(t, b, 4)
	other := message.Topic("other")
	b.OnFrame(4, wire.Subscribe{SubID: 40, Dest: other, Selector: "id < 100", Durable: true, DurableName: "d1"})
	if got := len(deliveredIDs(env, 4)[40]); got != 0 {
		t.Fatalf("recreated durable drained %d stale messages", got)
	}
	b.OnConnClose(4)
	// Old-topic publishes no longer reach the durable; new-topic ones do.
	publishOn(b, 2, "m6", topic, map[string]message.Value{"id": message.Int(6)})
	publishOn(b, 2, "m7", other, map[string]message.Value{"id": message.Int(7)})
	mustOpen(t, b, 5)
	b.OnFrame(5, wire.Subscribe{SubID: 50, Dest: other, Selector: "id < 100", Durable: true, DurableName: "d1"})
	if got := deliveredIDs(env, 5)[50]; !reflect.DeepEqual(got, []string{"m7"}) {
		t.Fatalf("reindexed durable drained %v, want [m7]", got)
	}

	// Unsubscribe destroys the durable state entirely.
	b.OnFrame(5, wire.Unsubscribe{SubID: 50})
	publishOn(b, 2, "m8", other, map[string]message.Value{"id": message.Int(8)})
	mustOpen(t, b, 6)
	b.OnFrame(6, wire.Subscribe{SubID: 60, Dest: other, Selector: "id < 100", Durable: true, DurableName: "d1"})
	if got := len(deliveredIDs(env, 6)[60]); got != 0 {
		t.Fatalf("destroyed durable kept %d messages", got)
	}
	if b.PendingCount() == 0 && env.heap.Used() != pendingHeapUsed(b) {
		t.Fatalf("heap accounting drifted: used=%d", env.heap.Used())
	}
}

// pendingHeapUsed recomputes what the heap should hold for pending
// deliveries (the fake env has no other live allocations in these tests).
func pendingHeapUsed(b *Broker) int64 {
	var n int64
	for _, c := range b.sessions.conns {
		for _, sub := range c.subs {
			for _, pd := range sub.pending {
				n += pd.cost
			}
		}
	}
	return n
}

// TestIndexParityRandomized drives an identical randomized interleaving
// of subscribes, unsubscribes, durable attach/detach cycles and publishes
// through an indexed broker and a legacy linear-scan broker, then
// asserts identical per-subscription delivery sequences and stats.
func TestIndexParityRandomized(t *testing.T) {
	selectors := []string{
		"", "TRUE", "1 = 1",
		"id < 50", "id >= 50", "id < 50", // duplicates exercise grouping
		"name LIKE 'gen-%'", "id BETWEEN 20 AND 60",
		"region IN ('us', 'eu') AND id < 80",
		"missing IS NULL AND id < 90",
	}
	for seed := int64(1); seed <= 5; seed++ {
		bI, envI, bL, envL := newIndexedAndLegacy(t)
		rng := rand.New(rand.NewSource(seed))

		const conns = 8
		for c := ConnID(1); c <= conns; c++ {
			for _, b := range []*Broker{bI, bL} {
				if err := b.OnConnOpen(c); err != nil {
					t.Fatal(err)
				}
			}
		}
		topics := []message.Destination{message.Topic("t1"), message.Topic("t2")}
		nextSub := int64(0)
		type subInfo struct {
			conn ConnID
			id   int64
		}
		var live []subInfo
		durableCycle := 0

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 3: // subscribe
				nextSub++
				c := ConnID(1 + rng.Intn(conns-1)) // conn 8 reserved for publishing
				f := wire.Subscribe{
					SubID:    nextSub,
					Dest:     topics[rng.Intn(len(topics))],
					Selector: selectors[rng.Intn(len(selectors))],
				}
				bI.OnFrame(c, f)
				bL.OnFrame(c, f)
				live = append(live, subInfo{conn: c, id: nextSub})
			case r < 4: // unsubscribe
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				s := live[i]
				live = append(live[:i], live[i+1:]...)
				bI.OnFrame(s.conn, wire.Unsubscribe{SubID: s.id})
				bL.OnFrame(s.conn, wire.Unsubscribe{SubID: s.id})
			case r < 5: // durable attach / detach cycle via a dedicated conn
				durableCycle++
				nextSub++
				f := wire.Subscribe{
					SubID:       nextSub,
					Dest:        topics[durableCycle%len(topics)],
					Selector:    "id < 70",
					Durable:     true,
					DurableName: fmt.Sprintf("dur-%d", durableCycle%3),
				}
				c := ConnID(1 + rng.Intn(conns-1))
				bI.OnFrame(c, f)
				bL.OnFrame(c, f)
				if rng.Intn(2) == 0 {
					bI.OnFrame(c, wire.Unsubscribe{SubID: nextSub})
					bL.OnFrame(c, wire.Unsubscribe{SubID: nextSub})
				} else {
					live = append(live, subInfo{conn: c, id: nextSub})
				}
			default: // publish
				id := fmt.Sprintf("m%d", op)
				props := map[string]message.Value{
					"id":     message.Int(int32(rng.Intn(100))),
					"name":   message.String([]string{"gen-1", "probe-2"}[rng.Intn(2)]),
					"region": message.String([]string{"us", "eu", "ap"}[rng.Intn(3)]),
				}
				dest := topics[rng.Intn(len(topics))]
				publishOn(bI, conns, id, dest, props)
				publishOn(bL, conns, id, dest, props)
			}
		}

		for c := ConnID(1); c <= conns; c++ {
			gi, gl := deliveredIDs(envI, c), deliveredIDs(envL, c)
			if !reflect.DeepEqual(gi, gl) {
				t.Fatalf("seed %d conn %d: indexed deliveries %v != legacy %v", seed, c, gi, gl)
			}
		}
		// The lock meters legitimately differ across read-path modes
		// (that difference is the point of the meters); everything else
		// must match exactly.
		si, sl := clearLockMeters(bI.Stats()), clearLockMeters(bL.Stats())
		if si != sl {
			t.Fatalf("seed %d: indexed stats %+v != legacy stats %+v", seed, si, sl)
		}
	}
}
