package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// TestSnapshotChurnEquivalence is the randomized churn equivalence
// storm for the lock-free read path: concurrent subscribe/unsubscribe/
// durable-recreate churn while publishers hammer the same topics, run
// once per read-path mode. Delivery *during* the storm is inherently
// racy (a publish concurrent with a subscribe may legitimately land on
// either side of it, in both modes), so the storm phase asserts safety
// only — no races under -race, balanced heap at teardown, no lost
// allocations from publishes racing drops. Then the storm quiesces, a
// deterministic subscriber set attaches, and a known message batch is
// published from one goroutine: the phase-2 delivered multisets must be
// identical between snapshot and locked modes, proving the churned-up
// snapshot state converged to exactly the locked index state.
func TestSnapshotChurnEquivalence(t *testing.T) {
	snap := runChurnStorm(t, func(cfg *Config) {})
	lock := runChurnStorm(t, func(cfg *Config) { cfg.LockedReadPath = true })
	if !reflect.DeepEqual(snap, lock) {
		t.Fatalf("post-churn probe deliveries diverge:\nsnapshot: %v\nlocked:   %v", snap, lock)
	}
}

// TestMatchIndexChurnEquivalence runs the same churn storm with the
// matching index on (the default) and off (LinearMatch): the storm
// phase races concurrent index rebuilds against indexed publishes under
// -race, and the quiesced probe deliveries must be identical — the
// index state converged by churn must route exactly like the linear
// scan.
func TestMatchIndexChurnEquivalence(t *testing.T) {
	indexed := runChurnStorm(t, func(cfg *Config) {})
	linear := runChurnStorm(t, func(cfg *Config) { cfg.LinearMatch = true })
	if !reflect.DeepEqual(indexed, linear) {
		t.Fatalf("post-churn probe deliveries diverge:\nindexed: %v\nlinear:  %v", indexed, linear)
	}
}

// runChurnStorm is the shared churn driver: concurrent subscribe/
// unsubscribe/durable-recreate churn under publish load, then a
// deterministic quiesced probe whose ordered deliveries are returned
// for cross-mode comparison.
func runChurnStorm(t *testing.T, mutate func(*Config)) map[ConnID][]string {
	t.Helper()
	const (
		churners  = 6
		pubs      = 4
		stormOps  = 300
		stormMsgs = 200
		probeMsgs = 120
	)
	topics := make([]message.Destination, 6)
	for i := range topics {
		topics[i] = message.Topic(fmt.Sprintf("t%d", i))
	}

	run := func() map[ConnID][]string {
		env := newRaceEnv()
		cfg := DefaultConfig("churn")
		cfg.Shards = 8
		mutate(&cfg)
		locked := cfg.LockedReadPath
		b := New(env, cfg)

		// --- Phase 1: churn storm under concurrent publishing.
		var wg sync.WaitGroup
		for g := 0; g < churners; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				c := ConnID(100 + g)
				if err := b.OnConnOpen(c); err != nil {
					t.Error(err)
					return
				}
				nextSub := int64(0)
				var live []int64
				for op := 0; op < stormOps; op++ {
					switch r := rng.Intn(10); {
					case r < 4: // subscribe (sometimes durable: recreate storms)
						nextSub++
						f := wire.Subscribe{
							SubID:    nextSub,
							Dest:     topics[rng.Intn(len(topics))],
							Selector: []string{"", "id < 50", "id >= 50"}[rng.Intn(3)],
						}
						if rng.Intn(3) == 0 {
							f.Durable = true
							f.DurableName = fmt.Sprintf("dur-%d", g)
						}
						b.OnFrame(c, f)
						live = append(live, nextSub)
					case r < 7: // unsubscribe
						if len(live) == 0 {
							continue
						}
						i := rng.Intn(len(live))
						b.OnFrame(c, wire.Unsubscribe{SubID: live[i]})
						live = append(live[:i], live[i+1:]...)
					default: // ack deliveries so far
						env.drainAcks(b, c)
					}
				}
				env.drainAcks(b, c)
				b.OnConnClose(c)
			}(g)
		}
		for g := 0; g < pubs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(2000 + g)))
				c := ConnID(200 + g)
				if err := b.OnConnOpen(c); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < stormMsgs; i++ {
					m := message.NewText("x")
					m.ID = fmt.Sprintf("p1-%d-%d", g, i)
					m.Dest = topics[rng.Intn(len(topics))]
					m.SetProperty("id", message.Int(int32(rng.Intn(100))))
					b.OnFrame(c, wire.Publish{Seq: int64(i), Msg: m})
				}
				b.OnConnClose(c)
			}(g)
		}
		wg.Wait()

		// Destroy the churners' durables so leftover backlogs can't leak
		// into phase 2 (their content is storm-order dependent).
		sweep := ConnID(900)
		if err := b.OnConnOpen(sweep); err != nil {
			t.Fatal(err)
		}
		for g := 0; g < churners; g++ {
			id := int64(g + 1)
			b.OnFrame(sweep, wire.Subscribe{
				SubID: id, Dest: message.Topic("sweep"), Selector: "FALSE",
				Durable: true, DurableName: fmt.Sprintf("dur-%d", g),
			})
			b.OnFrame(sweep, wire.Unsubscribe{SubID: id})
		}
		env.drainAcks(b, sweep)
		b.OnConnClose(sweep)

		// --- Phase 2: deterministic probe over the quiesced broker.
		probes := []struct {
			conn ConnID
			dest message.Destination
			sel  string
		}{
			{301, topics[0], ""},
			{302, topics[0], "id < 50"},
			{303, topics[1], "id >= 50"},
			{304, topics[2], ""},
			{305, topics[3], "id < 25"},
		}
		for i, p := range probes {
			if err := b.OnConnOpen(p.conn); err != nil {
				t.Fatal(err)
			}
			b.OnFrame(p.conn, wire.Subscribe{SubID: int64(i + 1), Dest: p.dest, Selector: p.sel})
		}
		pubConn := ConnID(400)
		if err := b.OnConnOpen(pubConn); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < probeMsgs; i++ {
			m := message.NewText("probe")
			m.ID = fmt.Sprintf("p2-%d", i)
			m.Dest = topics[rng.Intn(4)]
			m.SetProperty("id", message.Int(int32(rng.Intn(100))))
			b.OnFrame(pubConn, wire.Publish{Seq: int64(i), Msg: m})
		}

		// Collect each probe's ordered phase-2 message IDs, then tear
		// everything down; the shared heap must balance to zero or a
		// snapshot-path delivery leaked past a drop.
		got := make(map[ConnID][]string)
		for _, p := range probes {
			r := env.rec(p.conn)
			r.mu.Lock()
			got[p.conn] = append([]string(nil), r.ids...)
			r.mu.Unlock()
			env.drainAcks(b, p.conn)
			b.OnConnClose(p.conn)
		}
		b.OnConnClose(pubConn)
		if used := env.heap.Used(); used != 0 {
			t.Fatalf("locked=%v: heap not balanced after teardown: %d bytes live", locked, used)
		}
		if n := b.PendingCount(); n != 0 {
			t.Fatalf("locked=%v: pending after teardown: %d", locked, n)
		}
		if !locked {
			if rl := b.Stats().ReadLockAcquisitions; rl != 0 {
				t.Fatalf("snapshot mode took %d read-path shard locks", rl)
			}
		}
		return got
	}

	return run()
}
