package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Serial-vs-parallel fan-out equivalence: the engine promises that for
// any single caller, per-connection delivery transcripts and every
// mode-independent counter are identical whether a fan-out runs as the
// serial per-frame loop or as per-connection runs across the worker
// pool. The storm drives randomized subscribe/publish/ack/unsubscribe/
// connection-churn traffic through one broker per mode — same seed,
// same ops — and compares transcripts, stats, pending and heap.

// fanoutStormSelectors gives the storm a mix of fast-set and selector
// subscriptions, so plans mix fast members with group members.
var fanoutStormSelectors = []string{"", "", "id < 500", "id >= 300", "region = 'eu'"}

// runFanoutStorm drives the deterministic storm against one broker and
// returns its env. Conns 1..nConns are subscribers; conn 100 publishes.
func runFanoutStorm(t *testing.T, seed int64, mut func(*Config)) (*Broker, *raceEnv) {
	t.Helper()
	env := newRaceEnv()
	cfg := DefaultConfig("fanstorm")
	cfg.Shards = 4
	mut(&cfg)
	b := New(env, cfg)

	const nConns = 6
	rng := rand.New(rand.NewSource(seed))
	topics := []string{"t0", "t1", "t2"}
	open := make(map[ConnID]bool)
	for c := ConnID(1); c <= nConns; c++ {
		if err := b.OnConnOpen(c); err != nil {
			t.Fatal(err)
		}
		open[c] = true
	}
	if err := b.OnConnOpen(100); err != nil {
		t.Fatal(err)
	}
	type subRef struct {
		conn ConnID
		id   int64
	}
	var subs []subRef
	nextSub := int64(0)

	for op := 0; op < 900; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // subscribe
			c := ConnID(rng.Intn(nConns) + 1)
			if !open[c] {
				continue
			}
			nextSub++
			b.OnFrame(c, wire.Subscribe{
				SubID:    nextSub,
				Dest:     message.Topic(topics[rng.Intn(len(topics))]),
				Selector: fanoutStormSelectors[rng.Intn(len(fanoutStormSelectors))],
			})
			subs = append(subs, subRef{conn: c, id: nextSub})
		case k < 8: // publish + ack feedback
			m := message.NewText("payload")
			m.ID = fmt.Sprintf("ID:storm/%d", op)
			m.Dest = message.Topic(topics[rng.Intn(len(topics))])
			m.SetProperty("id", message.Int(int32(rng.Intn(1000))))
			if rng.Intn(2) == 0 {
				m.SetProperty("region", message.String("eu"))
			} else {
				m.SetProperty("region", message.String("us"))
			}
			b.OnFrame(100, wire.Publish{Seq: int64(op), Msg: m})
			if rng.Intn(3) == 0 {
				for c := ConnID(1); c <= nConns; c++ {
					if open[c] {
						env.drainAcks(b, c)
					}
				}
			}
		case k < 9: // unsubscribe a random live subscription
			if len(subs) == 0 {
				continue
			}
			i := rng.Intn(len(subs))
			s := subs[i]
			subs = append(subs[:i], subs[i+1:]...)
			if open[s.conn] {
				b.OnFrame(s.conn, wire.Unsubscribe{SubID: s.id})
			}
		default: // bounce a connection (subs drop, deliveries stop)
			c := ConnID(rng.Intn(nConns) + 1)
			if open[c] {
				env.drainAcks(b, c)
				b.OnConnClose(c)
				// Acks recorded but not yet fed back die with the conn.
				r := env.rec(c)
				r.mu.Lock()
				r.tags = nil
				r.mu.Unlock()
				open[c] = false
				kept := subs[:0]
				for _, s := range subs {
					if s.conn != c {
						kept = append(kept, s)
					}
				}
				subs = kept
			} else {
				if err := b.OnConnOpen(c); err != nil {
					t.Fatal(err)
				}
				open[c] = true
			}
		}
	}
	// Quiesce: feed every outstanding ack back.
	for c := ConnID(1); c <= nConns; c++ {
		if open[c] {
			env.drainAcks(b, c)
		}
	}
	return b, env
}

// runFanoutEquivalence compares two storm runs configured by mutA/mutB.
func runFanoutEquivalence(t *testing.T, mutA, mutB func(*Config)) {
	t.Helper()
	for seed := int64(1); seed <= 5; seed++ {
		bA, envA := runFanoutStorm(t, seed, mutA)
		bB, envB := runFanoutStorm(t, seed, mutB)
		for c := ConnID(1); c <= 6; c++ {
			rA, rB := envA.rec(c), envB.rec(c)
			if len(rA.ids) != len(rB.ids) {
				t.Fatalf("seed %d conn %d: %d vs %d deliveries", seed, c, len(rA.ids), len(rB.ids))
			}
			for i := range rA.ids {
				if rA.ids[i] != rB.ids[i] {
					t.Fatalf("seed %d conn %d delivery %d: %q vs %q", seed, c, i, rA.ids[i], rB.ids[i])
				}
			}
		}
		if sA, sB := clearLockMeters(bA.Stats()), clearLockMeters(bB.Stats()); sA != sB {
			t.Fatalf("seed %d: stats diverge\nA: %+v\nB: %+v", seed, sA, sB)
		}
		if pA, pB := bA.PendingCount(), bB.PendingCount(); pA != pB {
			t.Fatalf("seed %d: pending %d vs %d", seed, pA, pB)
		}
		if uA, uB := envA.heap.Used(), envB.heap.Used(); uA != uB {
			t.Fatalf("seed %d: heap %d vs %d", seed, uA, uB)
		}
	}
}

// TestFanoutSerialParallelEquivalenceRandomized pins the headline
// contract: SerialFanout vs the parallel engine forced through the pool
// for every fan-out (threshold 1) agree on all of it.
func TestFanoutSerialParallelEquivalenceRandomized(t *testing.T) {
	runFanoutEquivalence(t,
		func(c *Config) { c.SerialFanout = true },
		func(c *Config) { c.ParallelFanoutThreshold = 1 })
}

// TestFanoutThresholdEquivalenceRandomized: the default threshold
// (mixed inline/pooled execution) agrees with always-pooled.
func TestFanoutThresholdEquivalenceRandomized(t *testing.T) {
	runFanoutEquivalence(t,
		func(c *Config) {},
		func(c *Config) { c.ParallelFanoutThreshold = 1 })
}

// TestFanoutParallelChurnStress hammers the parallel engine from 8
// publisher goroutines while another goroutine bounces subscriber
// connections mid-fan-out — the detached-subscription skip path and the
// batch-released-by-the-broker path (a run whose every delivery died)
// run constantly. Every delivery allocation must balance: SharedHeap
// panics on unbalanced frees, the counting DeliverBatch pool panics on
// a double release, and -race (CI) checks the locking.
func TestFanoutParallelChurnStress(t *testing.T) {
	env := newRaceEnv()
	cfg := DefaultConfig("fanchurn")
	cfg.Shards = 4
	cfg.ParallelFanoutThreshold = 8 // engage the pool on small fan-outs too
	b := New(env, cfg)

	const subConns = 4
	const subsPerConn = 12 // 48 matched targets per publish when all live
	for c := ConnID(1); c <= subConns; c++ {
		if err := b.OnConnOpen(c); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < subsPerConn; s++ {
			b.OnFrame(c, wire.Subscribe{SubID: int64(int(c)*1000 + s), Dest: message.Topic("churn")})
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		pubConn := ConnID(100 + g)
		if err := b.OnConnOpen(pubConn); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, pubConn ConnID) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				m := message.NewText("payload")
				m.ID = fmt.Sprintf("ID:churn/%d/%d", g, i)
				m.Dest = message.Topic("churn")
				b.OnFrame(pubConn, wire.Publish{Seq: int64(i), Msg: m})
			}
		}(g, pubConn)
	}
	wg.Add(1)
	go func() { // churner: bounce subscriber conns mid-fan-out
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60; i++ {
			c := ConnID(rng.Intn(subConns) + 1)
			b.OnConnClose(c)
			if err := b.OnConnOpen(c); err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < subsPerConn; s++ {
				b.OnFrame(c, wire.Subscribe{SubID: int64(1_000_000 + i*100 + s), Dest: message.Topic("churn")})
			}
		}
	}()
	wg.Wait()

	// Sweep: ack everything delivered, then drop every connection; the
	// heap must balance to zero.
	for c := ConnID(1); c <= subConns; c++ {
		env.drainAcks(b, c)
		b.OnConnClose(c)
	}
	for g := 0; g < 8; g++ {
		b.OnConnClose(ConnID(100 + g))
	}
	if used := env.heap.Used(); used != 0 {
		t.Fatalf("heap unbalanced after sweep: %d bytes", used)
	}
	if p := b.PendingCount(); p != 0 {
		t.Fatalf("pending not drained: %d", p)
	}
}
