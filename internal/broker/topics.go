// Destination layer, part 2: topics. Each topic owns the subscription
// index described in the package comment (fast set + selector groups,
// or the flat legacy scan set). All topicState access happens with the
// owning shard's lock held.

package broker

import (
	"gridmon/internal/message"
	"gridmon/internal/predindex"
	"gridmon/internal/selector"
)

// selGroup collects the topic subscriptions sharing one selector source
// text. The group's compiled program is evaluated once per published
// message and its verdict applied to every member. Grouping is textual:
// semantically equivalent but differently written selectors ("id<10" vs
// "id < 10") land in separate groups and are evaluated separately.
type selGroup struct {
	key      string // verbatim selector source
	prog     *selector.Program
	matchKey predindex.Key   // required-conjunct key, cached at group creation
	subs     []*subscription // subscribe order
}

// topicState indexes a topic's subscriptions for publish fan-out. In the
// default indexed mode, fast holds subscriptions delivered without
// selector evaluation and groups holds the selector-bearing ones,
// deduplicated by selector source. In legacy mode every subscription
// lives in the legacy set — an unordered map, exactly the structure the
// pre-index broker scanned.
type topicState struct {
	name   string
	fast   []*subscription      // always-true selectors, subscribe order
	groups []*selGroup          // first-appearance order
	byKey  map[string]*selGroup // selector source -> group
	legacy map[*subscription]struct{}
}

func (t *topicState) subCount() int {
	n := len(t.fast) + len(t.legacy)
	for _, g := range t.groups {
		n += len(g.subs)
	}
	return n
}

// addTopicSub places a subscription into the topic's index: the fast set
// when its selector provably matches everything, otherwise the selector
// group for its selector source (created on first use). Legacy mode
// appends to the flat scan list instead. Shard lock held.
func (b *Broker) addTopicSub(t *topicState, sub *subscription) {
	if b.cfg.LegacyLinearScan {
		if t.legacy == nil {
			t.legacy = make(map[*subscription]struct{})
		}
		t.legacy[sub] = struct{}{}
		return
	}
	if sub.sel.AlwaysTrue() {
		t.fast = append(t.fast, sub)
		return
	}
	key := sub.sel.String()
	g := t.byKey[key]
	if g == nil {
		g = &selGroup{key: key, prog: sub.sel.Compiled(), matchKey: sub.sel.RequiredKey()}
		t.byKey[key] = g
		t.groups = append(t.groups, g)
	}
	g.subs = append(g.subs, sub)
}

// removeTopicSub removes a subscription from the topic's index,
// preserving the order of the remaining entries. Emptied selector groups
// are dropped. Shard lock held.
func (b *Broker) removeTopicSub(t *topicState, sub *subscription) {
	if b.cfg.LegacyLinearScan {
		delete(t.legacy, sub)
		return
	}
	if sub.sel.AlwaysTrue() {
		t.fast = removeSub(t.fast, sub)
		return
	}
	key := sub.sel.String()
	g := t.byKey[key]
	if g == nil {
		return
	}
	g.subs = removeSub(g.subs, sub)
	if len(g.subs) == 0 {
		delete(t.byKey, key)
		for i, og := range t.groups {
			if og == g {
				copy(t.groups[i:], t.groups[i+1:])
				t.groups[len(t.groups)-1] = nil // don't pin the dead group
				t.groups = t.groups[:len(t.groups)-1]
				break
			}
		}
	}
}

// removeSub deletes sub from the slice, preserving order and niling the
// vacated tail slot so the backing array does not pin the dead
// subscription (and the pending-delivery map hanging off it).
func removeSub(subs []*subscription, sub *subscription) []*subscription {
	for i, s := range subs {
		if s == sub {
			copy(subs[i:], subs[i+1:])
			subs[len(subs)-1] = nil
			return subs[:len(subs)-1]
		}
	}
	return subs
}

// routeTopic is the indexed topic fan-out. Shard lock held.
func (b *Broker) routeTopic(sh *shard, m *message.Message) {
	t := sh.topics[m.Dest.Name]
	durables := sh.durablesByTopic[m.Dest.Name]
	if t == nil && len(durables) == 0 {
		return
	}
	// The message's encoded size (hence its delivery memory cost) is
	// identical for every subscriber: compute it once per publish.
	cost := int64(m.EncodedSize()) + b.cfg.MemPerPendingOverhead
	if t != nil {
		// Fast set: selectors that provably accept everything are
		// delivered without evaluation.
		for _, sub := range t.fast {
			b.deliverCost(sub, m, cost)
		}
		// Selector groups: one compiled evaluation per distinct
		// selector, applied to every subscriber sharing it.
		if len(t.groups) > 0 {
			b.stats.matchProgramEvals.Add(uint64(len(t.groups)))
		}
		for _, g := range t.groups {
			if g.prog.Matches(m) {
				for _, sub := range g.subs {
					b.deliverCost(sub, m, cost)
				}
			} else {
				b.stats.selectorRejected.Add(uint64(len(g.subs)))
			}
		}
	}
	// Durable subscribers currently offline buffer the message; only
	// this topic's durables are touched.
	for _, d := range durables {
		if d.active == nil {
			b.stats.matchProgramEvals.Add(1)
			if d.sel.Matches(m) {
				b.storeDurable(d, m, cost)
			}
		}
	}
}

// routeTopicLegacy is the pre-index publish path, kept as the measured
// baseline: every topic subscription is visited with a tree-walking
// selector evaluation per candidate, and every durable in the broker is
// scanned regardless of its topic. Serial-only: the durable scan reads
// the global directory without taking durableMu (lock order forbids it
// here), which is safe only with a single calling goroutine.
func (b *Broker) routeTopicLegacy(sh *shard, m *message.Message) {
	if t := sh.topics[m.Dest.Name]; t != nil {
		for sub := range t.legacy {
			if sub.sel.EvalInterpreted(m) == selector.TriTrue {
				b.deliverTo(sub, m)
			} else {
				b.stats.selectorRejected.Add(1)
			}
		}
	}
	for _, d := range b.durables {
		if d.active == nil && d.topic == m.Dest.Name && d.sel.EvalInterpreted(m) == selector.TriTrue {
			b.storeDurable(d, m, int64(m.EncodedSize())+b.cfg.MemPerPendingOverhead)
		}
	}
}
