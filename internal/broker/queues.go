// Destination layer, part 3: queues. Round-robin competing consumers
// with selector skip, and a stored backlog while no consumer matches.
// All queueState access happens with the owning shard's lock held.

package broker

import "gridmon/internal/message"

type storedMsg struct {
	msg  *message.Message
	cost int64
}

type queueState struct {
	name    string
	subs    []*subscription // round-robin order
	rrNext  int
	backlog []storedMsg
}

func (b *Broker) enqueue(q *queueState, m *message.Message) {
	if b.cfg.MaxQueueBacklog > 0 && len(q.backlog) >= b.cfg.MaxQueueBacklog {
		b.stats.droppedBacklog.Add(1)
		return
	}
	cost := int64(m.EncodedSize()) + b.cfg.MemPerPendingOverhead
	if err := b.env.Alloc(cost); err != nil {
		b.stats.droppedOOM.Add(1)
		return
	}
	q.backlog = append(q.backlog, storedMsg{msg: b.shareOrClone(m), cost: cost})
	if j := b.loadJournal(); j != nil {
		j.QueueStored(q.name, m)
	}
}

// drainQueue hands queued messages to consumers round-robin, honouring
// selectors: a message goes to the next consumer whose selector accepts
// it; messages no consumer accepts stay queued. The backlog is filtered
// in place — undelivered messages shift down within the same backing
// array — so a drain allocates nothing, and when no consumer matches
// anything the backlog is left untouched. Shard lock held.
func (b *Broker) drainQueue(q *queueState) {
	if len(q.subs) == 0 || len(q.backlog) == 0 {
		return
	}
	// Removed-index bookkeeping is journal-only: the nil-journal drain
	// stays allocation-free.
	j := b.loadJournal()
	var removed []int
	kept := 0
	for idx, sm := range q.backlog {
		delivered := false
		for i := 0; i < len(q.subs); i++ {
			sub := q.subs[(q.rrNext+i)%len(q.subs)]
			if sub.sel.Matches(sm.msg) {
				q.rrNext = (q.rrNext + i + 1) % len(q.subs)
				b.env.Free(sm.cost)
				b.deliverTo(sub, sm.msg)
				delivered = true
				break
			}
		}
		if !delivered {
			q.backlog[kept] = sm
			kept++
		} else if j != nil {
			removed = append(removed, idx)
		}
	}
	if j != nil && len(removed) > 0 {
		j.QueueDrained(q.name, removed)
	}
	if kept == len(q.backlog) {
		return // nothing delivered; backlog unchanged
	}
	// Zero the vacated tail so delivered messages don't stay pinned by
	// the backing array.
	for i := kept; i < len(q.backlog); i++ {
		q.backlog[i] = storedMsg{}
	}
	q.backlog = q.backlog[:kept]
}

// removeQueueSub takes a subscription out of the queue's round-robin
// ring, dropping the queue state entirely once both consumers and
// backlog are gone. Shard lock held.
func (b *Broker) removeQueueSub(sh *shard, q *queueState, sub *subscription) {
	for i, s := range q.subs {
		if s == sub {
			copy(q.subs[i:], q.subs[i+1:])
			q.subs[len(q.subs)-1] = nil // don't pin the dead subscription
			q.subs = q.subs[:len(q.subs)-1]
			if q.rrNext > i {
				q.rrNext--
			}
			break
		}
	}
	if len(q.subs) == 0 && len(q.backlog) == 0 {
		delete(sh.queues, q.name)
	}
}
