// Session layer: the connection table, per-connection subscription
// registries, per-subscription acknowledgement bookkeeping, and
// connection admission against the Env's resource budget. Everything a
// client "is" lives here; what a client is subscribed *to* lives in the
// destination shards.

package broker

import (
	"fmt"
	"sync"

	"gridmon/internal/message"
	"gridmon/internal/selector"
	"gridmon/internal/wire"
)

// ConnID identifies a client connection within one broker.
type ConnID int64

// sessionTable is the connection registry. Its mutex guards only the
// table itself; per-connection state is guarded by each conn's own
// mutex, and neither lock is ever held while acquiring a shard lock.
type sessionTable struct {
	mu    sync.RWMutex
	conns map[ConnID]*conn
}

func (s *sessionTable) init() { s.conns = make(map[ConnID]*conn) }

func (s *sessionTable) lookup(id ConnID) *conn {
	s.mu.RLock()
	c := s.conns[id]
	s.mu.RUnlock()
	return c
}

type conn struct {
	id ConnID

	mu       sync.Mutex // guards clientID, subs, closed
	clientID string
	subs     map[int64]*subscription
	closed   bool
}

type pendingDelivery struct {
	tag  int64
	cost int64 // heap bytes charged
}

// subscription index membership is owned by the shard of its
// destination (touched only with sub.shard.mu held); delivery state —
// pending, nextTag, detached — is guarded by the subscription's own
// leaf lock, because the lock-free publish path delivers without any
// shard lock. sub.mu is a leaf: nothing is acquired while holding it.
type subscription struct {
	conn        *conn
	shard       *shard // owning destination shard, fixed at subscribe
	id          int64
	dest        message.Destination
	sel         *selector.Selector
	ackMode     message.AckMode
	durableName string

	mu       sync.Mutex
	detached bool // set at drop; late snapshot deliveries are skipped
	nextTag  int64
	pending  map[int64]pendingDelivery
}

// OnConnOpen admits a new client connection, charging its memory cost.
// The binding must call this before delivering any frames for the
// connection and must close the transport if an error is returned.
// Shard-safe; admission is serialized by the session lock.
func (b *Broker) OnConnOpen(id ConnID) error {
	b.sessions.mu.Lock()
	if _, dup := b.sessions.conns[id]; dup {
		b.sessions.mu.Unlock()
		panic(fmt.Sprintf("broker: duplicate conn id %d", id))
	}
	if err := b.env.AllocConn(); err != nil {
		b.sessions.mu.Unlock()
		b.stats.refusedConns.Add(1)
		return fmt.Errorf("%w: %v", ErrConnRefused, err)
	}
	b.sessions.conns[id] = &conn{id: id, subs: make(map[int64]*subscription)}
	n := int64(len(b.sessions.conns))
	b.stats.connections.Store(n)
	if n > b.stats.peakConnections.Load() {
		b.stats.peakConnections.Store(n)
	}
	b.sessions.mu.Unlock()
	return nil
}

// OnConnClose releases a connection and all its subscriptions. Durable
// subscriptions revert to the disconnected state and begin buffering.
// Shard-safe and idempotent.
func (b *Broker) OnConnClose(id ConnID) {
	b.sessions.mu.Lock()
	c, ok := b.sessions.conns[id]
	if !ok {
		b.sessions.mu.Unlock()
		return
	}
	delete(b.sessions.conns, id)
	b.stats.connections.Store(int64(len(b.sessions.conns)))
	b.sessions.mu.Unlock()

	// Mark the conn closed so a racing subscribe cannot install into a
	// dead connection, and snapshot the subscriptions to drop.
	c.mu.Lock()
	c.closed = true
	subs := make([]*subscription, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, sub)
	}
	c.subs = make(map[int64]*subscription)
	c.mu.Unlock()

	for _, sub := range subs {
		b.dropSubscription(sub, false)
	}
	b.env.FreeConn()
}

func (b *Broker) handleSubscribe(c *conn, v wire.Subscribe) {
	c.mu.Lock()
	_, dup := c.subs[v.SubID]
	c.mu.Unlock()
	if dup {
		// Protocol violation; drop the connection.
		b.OnConnClose(c.id)
		b.env.CloseConn(c.id)
		return
	}
	sel, err := selector.Parse(v.Selector)
	if err != nil {
		// JMS raises InvalidSelectorException at subscribe time; the
		// protocol surfaces it by closing the subscription attempt. We
		// signal with SubOK carrying a negative id.
		b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
		return
	}
	ackMode := v.AckMode
	if ackMode == 0 {
		ackMode = message.AutoAck
	}
	sub := &subscription{
		conn:        c,
		id:          v.SubID,
		dest:        v.Dest,
		sel:         sel,
		ackMode:     ackMode,
		durableName: v.DurableName,
		pending:     make(map[int64]pendingDelivery),
	}
	switch v.Dest.Kind {
	case message.TopicKind:
		b.subscribeTopic(c, sub, v)
	case message.QueueKind:
		b.subscribeQueue(c, sub, v)
	default:
		b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
	}
}

// subscribeTopic installs a topic subscription: durable attach (under
// the durable directory lock), index insertion, interest callback,
// registration on the conn, SubOK, and durable backlog replay — all
// under one hold of the topic's shard lock, so a concurrent publish
// either lands in the backlog (drained below, after SubOK) or is
// delivered live once the subscription is indexed; no message is missed.
func (b *Broker) subscribeTopic(c *conn, sub *subscription, v wire.Subscribe) {
	var d *durableState
	if v.Durable && v.DurableName != "" {
		b.durableMu.Lock()
		defer b.durableMu.Unlock()
		var ok bool
		if d, ok = b.attachDurable(sub); !ok {
			b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
			return
		}
	}
	sh := b.shardFor(v.Dest.Name)
	sub.shard = sh
	b.lockShard(sh)
	defer sh.mu.Unlock()
	// Republish the topic's routing snapshot before the lock is released
	// (deferred calls run inner-first), so the lock-free read path sees
	// every index mutation made below.
	defer b.refreshTopicRoute(sh, v.Dest.Name)
	if d != nil {
		d.mu.Lock()
		d.active = sub
		d.mu.Unlock()
	}
	t := sh.topics[v.Dest.Name]
	if t == nil {
		t = &topicState{name: v.Dest.Name, byKey: make(map[string]*selGroup)}
		sh.topics[v.Dest.Name] = t
	}
	wasEmpty := t.subCount() == 0
	b.addTopicSub(t, sub)
	if wasEmpty {
		b.notifyInterest(t.name, true)
	}
	if !b.registerSub(c, sub) {
		// The connection closed mid-subscribe: undo the installation.
		b.removeTopicSub(t, sub)
		if t.subCount() == 0 {
			b.notifyInterest(t.name, false)
			delete(sh.topics, t.name)
		}
		if d != nil {
			d.mu.Lock()
			d.active = nil
			d.mu.Unlock()
		}
		return
	}
	b.env.Send(c.id, wire.SubOK{SubID: v.SubID})
	if d != nil {
		// Deliver the backlog the durable buffered while disconnected.
		// The backlog is swapped out under the durable's leaf lock and
		// delivered after releasing it: deliverTo takes sub.mu, and leaf
		// locks never nest.
		d.mu.Lock()
		backlog := d.backlog
		d.backlog = nil
		d.mu.Unlock()
		if len(backlog) > 0 {
			if j := b.loadJournal(); j != nil {
				j.DurableFlushed(d.name)
			}
		}
		for _, sm := range backlog {
			b.env.Free(sm.cost)
			b.deliverTo(sub, sm.msg)
		}
	}
}

func (b *Broker) subscribeQueue(c *conn, sub *subscription, v wire.Subscribe) {
	sh := b.shardFor(v.Dest.Name)
	sub.shard = sh
	b.lockShard(sh)
	defer sh.mu.Unlock()
	q := sh.queues[v.Dest.Name]
	if q == nil {
		q = &queueState{name: v.Dest.Name}
		sh.queues[v.Dest.Name] = q
	}
	q.subs = append(q.subs, sub)
	if !b.registerSub(c, sub) {
		b.removeQueueSub(sh, q, sub)
		return
	}
	b.env.Send(c.id, wire.SubOK{SubID: v.SubID})
	// Deliver any backlog the subscription is entitled to.
	b.drainQueue(q)
}

// registerSub records the subscription on its connection, refusing when
// the connection has been closed concurrently. Called with the shard
// lock held (shard.mu → conn.mu is the one permitted nesting).
func (b *Broker) registerSub(c *conn, sub *subscription) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.subs[sub.id] = sub
	return true
}

// dropSubscription removes a subscription from its destination.
// unsubscribe distinguishes a client Unsubscribe (which also destroys
// durable state) from a connection close (which keeps it buffering).
// The caller has already detached the subscription from its conn.
func (b *Broker) dropSubscription(sub *subscription, unsubscribe bool) {
	if sub.durableName != "" {
		b.durableMu.Lock()
		defer b.durableMu.Unlock()
	}
	sh := sub.shard
	b.lockShard(sh)
	defer sh.mu.Unlock()
	// Detach under the subscription's leaf lock: a snapshot publish that
	// raced past the index removal sees the flag and skips the delivery
	// instead of allocating into a freed pending map.
	sub.mu.Lock()
	sub.detached = true
	for _, pd := range sub.pending {
		b.env.Free(pd.cost)
	}
	b.stats.pending.Add(-int64(len(sub.pending)))
	sub.pending = make(map[int64]pendingDelivery)
	sub.mu.Unlock()
	switch sub.dest.Kind {
	case message.TopicKind:
		defer b.refreshTopicRoute(sh, sub.dest.Name)
		if t := sh.topics[sub.dest.Name]; t != nil {
			b.removeTopicSub(t, sub)
			if t.subCount() == 0 {
				b.notifyInterest(t.name, false)
				delete(sh.topics, sub.dest.Name)
			}
		}
		if sub.durableName != "" {
			if d := b.durables[sub.durableName]; d != nil && d.active == sub {
				d.mu.Lock()
				d.active = nil
				if unsubscribe {
					for _, sm := range d.backlog {
						b.env.Free(sm.cost)
					}
					d.backlog = nil
				}
				d.mu.Unlock()
				if unsubscribe {
					delete(b.durables, sub.durableName)
					b.unindexDurable(sh, d)
					if j := b.loadJournal(); j != nil {
						j.DurableUnsubscribed(sub.durableName)
					}
				}
			}
		}
	case message.QueueKind:
		if q := sh.queues[sub.dest.Name]; q != nil {
			b.removeQueueSub(sh, q, sub)
		}
	}
}

func (b *Broker) handleAck(c *conn, v wire.Ack) {
	c.mu.Lock()
	sub := c.subs[v.SubID]
	c.mu.Unlock()
	if sub == nil {
		return
	}
	// Acknowledgement touches only the subscription's delivery state, so
	// its leaf lock suffices — acks no longer contend on the shard.
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for _, tag := range v.Tags {
		if pd, ok := sub.pending[tag]; ok {
			b.env.Free(pd.cost)
			delete(sub.pending, tag)
			b.stats.acked.Add(1)
			b.stats.pending.Add(-1)
		}
	}
}
