package broker

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Tests for the lock-free (snapshot) publish read path. The obligations
// mirror shard_test.go's: snapshot routing must be observably identical
// to locked routing for any single-goroutine operation sequence, and
// the lock meters must prove which path ran.

// clearLockMeters zeroes the contention-observability fields and the
// matching-index meters, which legitimately differ across read-path and
// match modes — that difference is the point of the meters. Everything
// else in Stats — including SelectorRejected, which the indexed path
// must bulk-account for skipped groups — must match exactly.
func clearLockMeters(s Stats) Stats {
	s.ReadLockAcquisitions = 0
	s.ShardLockAcquisitions = 0
	s.ShardLockContended = 0
	s.ShardLockWaitNs = 0
	s.MatchProgramEvals = 0
	s.MatchIndexCandidates = 0
	s.MatchGroupsSkipped = 0
	s.MatchDurablesSkipped = 0
	s.FanoutTasks = 0
	s.FanoutChunks = 0
	s.FanoutInlineRuns = 0
	s.EgressFlushes = 0
	s.EgressFrames = 0
	return s
}

// TestSnapshotLockedEquivalenceRandomized drives identical randomized
// operation sequences — connection churn, topic/queue/durable
// subscribes, durable recreates, unsubscribes, publishes, partial acks
// — through an 8-shard broker on the snapshot read path and one on the
// locked read path, from a single goroutine, then requires bit-identical
// frame transcripts, stats (lock meters aside), pending counts, heap
// usage and topic sets. Any index mutation missing its snapshot refresh
// shows up here as a routing divergence.
func TestSnapshotLockedEquivalenceRandomized(t *testing.T) {
	runRoutingEquivalence(t, func(cfg *Config) {}, func(cfg *Config) {
		cfg.LockedReadPath = true
	})
}

// runRoutingEquivalence drives the randomized operation storm through
// two brokers differing only by the given config mutations ("A" vs "B")
// and requires bit-identical observable behaviour. Shared by the
// snapshot-vs-locked and indexed-vs-linear-match equivalence suites.
func runRoutingEquivalence(t *testing.T, mutA, mutB func(*Config)) {
	t.Helper()
	selectors := []string{
		"", "TRUE", "1 = 1",
		"id < 50", "id >= 50",
		"name LIKE 'gen-%'", "id BETWEEN 20 AND 60",
		"region IN ('us', 'eu') AND id < 80",
		"id <> 50",      // residual key: the only ordered shape a NaN id matches
		"id <= 0.0/0.0", // NaN constant: never TRUE, Never key
	}
	var topics, queues []message.Destination
	for i := 0; i < 10; i++ {
		topics = append(topics, message.Topic(fmt.Sprintf("t%d", i)))
	}
	for i := 0; i < 4; i++ {
		queues = append(queues, message.Queue(fmt.Sprintf("q%d", i)))
	}

	for seed := int64(1); seed <= 6; seed++ {
		envSnap := newFakeEnv(0)
		cfgSnap := DefaultConfig("b")
		cfgSnap.Shards = 8
		mutA(&cfgSnap)
		bSnap := New(envSnap, cfgSnap)

		envLock := newFakeEnv(0)
		cfgLock := DefaultConfig("b")
		cfgLock.Shards = 8
		mutB(&cfgLock)
		bLock := New(envLock, cfgLock)

		both := func(fn func(b *Broker)) { fn(bSnap); fn(bLock) }
		rng := rand.New(rand.NewSource(seed))

		var open []ConnID
		nextConn := ConnID(0)
		openConn := func() {
			nextConn++
			id := nextConn
			both(func(b *Broker) {
				if err := b.OnConnOpen(id); err != nil {
					t.Fatal(err)
				}
			})
			open = append(open, id)
		}
		openConn() // conn 1 is the dedicated publisher
		pubConn := open[0]

		type subInfo struct {
			conn ConnID
			id   int64
		}
		var live []subInfo
		nextSub := int64(0)
		acked := map[ConnID]int{}

		for op := 0; op < 600; op++ {
			switch r := rng.Intn(20); {
			case r < 1 && len(open) < 12:
				openConn()
			case r < 2 && len(open) > 1: // close a non-publisher conn
				i := 1 + rng.Intn(len(open)-1)
				id := open[i]
				open = append(open[:i], open[i+1:]...)
				kept := live[:0]
				for _, s := range live {
					if s.conn != id {
						kept = append(kept, s)
					}
				}
				live = kept
				both(func(b *Broker) { b.OnConnClose(id) })
			case r < 6: // subscribe a topic
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				f := wire.Subscribe{
					SubID:    nextSub,
					Dest:     topics[rng.Intn(len(topics))],
					Selector: selectors[rng.Intn(len(selectors))],
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				live = append(live, subInfo{conn: c, id: nextSub})
			case r < 7: // subscribe a queue
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				f := wire.Subscribe{
					SubID:    nextSub,
					Dest:     queues[rng.Intn(len(queues))],
					Selector: selectors[rng.Intn(5)],
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				live = append(live, subInfo{conn: c, id: nextSub})
			case r < 9: // durable attach/recreate (sometimes destroyed)
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				// Varying topic AND selector across attaches of the same
				// durable name exercises the recreate-on-change rule —
				// including cross-shard moves — against the snapshot
				// refresh sites.
				f := wire.Subscribe{
					SubID:       nextSub,
					Dest:        topics[rng.Intn(5)],
					Selector:    []string{"id < 70", "id < 30"}[rng.Intn(2)],
					Durable:     true,
					DurableName: fmt.Sprintf("dur-%d", rng.Intn(3)),
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				if rng.Intn(3) == 0 {
					both(func(b *Broker) { b.OnFrame(c, wire.Unsubscribe{SubID: nextSub}) })
				} else if rng.Intn(2) == 0 {
					// Disconnect path: the durable keeps buffering.
					both(func(b *Broker) { b.OnConnClose(c) })
					for i, oc := range open {
						if oc == c {
							open = append(open[:i], open[i+1:]...)
							break
						}
					}
					kept := live[:0]
					for _, s := range live {
						if s.conn != c {
							kept = append(kept, s)
						}
					}
					live = kept
				} else {
					live = append(live, subInfo{conn: c, id: nextSub})
				}
			case r < 10: // unsubscribe
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				s := live[i]
				live = append(live[:i], live[i+1:]...)
				both(func(b *Broker) { b.OnFrame(s.conn, wire.Unsubscribe{SubID: s.id}) })
			case r < 12: // ack a batch of this conn's unacked deliveries
				if len(open) < 2 {
					continue
				}
				c := open[1+rng.Intn(len(open)-1)]
				frames := envSnap.sent[c]
				tags := map[int64][]int64{}
				n := 0
				for _, f := range frames[acked[c]:] {
					if d, ok := f.(*wire.Deliver); ok {
						tags[d.SubID] = append(tags[d.SubID], d.Tag)
					}
					n++
					if n >= 20 {
						break
					}
				}
				acked[c] += n
				for subID, ts := range tags {
					f := wire.Ack{SubID: subID, Tags: ts}
					both(func(b *Broker) { b.OnFrame(c, f) })
				}
			default: // publish
				id := fmt.Sprintf("m%d", op)
				dest := topics[rng.Intn(len(topics))]
				if rng.Intn(4) == 0 {
					dest = queues[rng.Intn(len(queues))]
				}
				props := map[string]message.Value{
					"id":     message.Int(int32(rng.Intn(100))),
					"name":   message.String([]string{"gen-1", "probe-2"}[rng.Intn(2)]),
					"region": message.String([]string{"us", "eu", "ap"}[rng.Intn(3)]),
				}
				if rng.Intn(8) == 0 {
					// NaN ids must route identically across all modes:
					// IEEE semantics match no Eq/Range selector, only
					// "id <> 50".
					props["id"] = message.Double(math.NaN())
				}
				both(func(b *Broker) { publishOn(b, pubConn, id, dest, props) })
			}
		}

		for c := ConnID(1); c <= nextConn; c++ {
			ts, tl := transcript(envSnap, c), transcript(envLock, c)
			if !reflect.DeepEqual(ts, tl) {
				t.Fatalf("seed %d conn %d: snapshot transcript (%d frames) != locked (%d frames)",
					seed, c, len(ts), len(tl))
			}
		}
		ss, sl := clearLockMeters(bSnap.Stats()), clearLockMeters(bLock.Stats())
		if ss != sl {
			t.Fatalf("seed %d: snapshot stats %+v != locked %+v", seed, ss, sl)
		}
		if bSnap.PendingCount() != bLock.PendingCount() {
			t.Fatalf("seed %d: pending %d != %d", seed, bSnap.PendingCount(), bLock.PendingCount())
		}
		if envSnap.heap.Used() != envLock.heap.Used() {
			t.Fatalf("seed %d: heap %d != %d", seed, envSnap.heap.Used(), envLock.heap.Used())
		}
		if ts, tl := bSnap.Topics(), bLock.Topics(); !reflect.DeepEqual(ts, tl) {
			t.Fatalf("seed %d: topics %v != %v", seed, ts, tl)
		}
	}
}

// TestReadPathLockMeters pins the observable contract of the lock
// meters: topic publishes on the snapshot path take zero shard locks
// (ReadLockAcquisitions stays 0 and ShardLockAcquisitions does not
// move), while the locked baseline records exactly one read-path
// acquisition per topic publish.
func TestReadPathLockMeters(t *testing.T) {
	run := func(locked bool) (perPublishShardLocks uint64, readLocks uint64) {
		env := newFakeEnv(0)
		cfg := DefaultConfig("b")
		cfg.Shards = 4
		cfg.LockedReadPath = locked
		b := New(env, cfg)
		mustOpen(t, b, 1)
		mustOpen(t, b, 2)
		b.OnFrame(2, wire.Subscribe{SubID: 1, Dest: message.Topic("t")})
		before := b.Stats()
		const n = 50
		for i := 0; i < n; i++ {
			publishOn(b, 1, fmt.Sprintf("m%d", i), message.Topic("t"), nil)
		}
		after := b.Stats()
		if got := after.Delivered - before.Delivered; got != n {
			t.Fatalf("locked=%v: delivered %d of %d publishes", locked, got, n)
		}
		return (after.ShardLockAcquisitions - before.ShardLockAcquisitions) / n,
			after.ReadLockAcquisitions - before.ReadLockAcquisitions
	}

	if perPub, readLocks := run(false); perPub != 0 || readLocks != 0 {
		t.Fatalf("snapshot mode: %d shard locks per publish, %d read locks (want 0, 0)", perPub, readLocks)
	}
	if perPub, readLocks := run(true); perPub != 1 || readLocks != 50 {
		t.Fatalf("locked mode: %d shard locks per publish, %d read locks (want 1, 50)", perPub, readLocks)
	}
}

// TestSnapshotSeesRestoredDurables covers the recovery refresh sites: a
// durable restored through the journal Restore API must buffer snapshot-
// path publishes (RestoreDurable), and a restored-then-dropped one must
// not (RestoreDurableDrop).
func TestSnapshotSeesRestoredDurables(t *testing.T) {
	env := newFakeEnv(0)
	cfg := DefaultConfig("b")
	cfg.Shards = 4
	b := New(env, cfg)
	if err := b.RestoreDurable("keep", "t", "id < 50"); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreDurable("drop", "t", ""); err != nil {
		t.Fatal(err)
	}
	b.RestoreDurableDrop("drop")

	mustOpen(t, b, 1)
	publishOn(b, 1, "hit", message.Topic("t"), map[string]message.Value{"id": message.Int(7)})
	publishOn(b, 1, "miss", message.Topic("t"), map[string]message.Value{"id": message.Int(90)})

	dumps := b.DumpDurables()
	if len(dumps) != 1 || dumps[0].Name != "keep" {
		t.Fatalf("durable dump: %+v", dumps)
	}
	if len(dumps[0].Backlog) != 1 || dumps[0].Backlog[0].ID != "hit" {
		t.Fatalf("restored durable backlog: %+v", dumps[0].Backlog)
	}
}
