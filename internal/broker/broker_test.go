package broker

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gridmon/internal/message"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// fakeEnv records outputs and backs memory with simproc heaps: `native`
// models the per-connection thread budget, `heap` the message heap.
type fakeEnv struct {
	now     int64
	sent    map[ConnID][]wire.Frame
	closed  map[ConnID]bool
	heap    *simproc.Heap
	native  *simproc.Heap
	connMem int64
}

func newFakeEnv(heapLimit int64) *fakeEnv {
	return &fakeEnv{
		sent:    make(map[ConnID][]wire.Frame),
		closed:  make(map[ConnID]bool),
		heap:    simproc.NewHeap("test-heap", heapLimit, 0),
		native:  simproc.NewHeap("test-native", 0, 0),
		connMem: 256 << 10,
	}
}

func (e *fakeEnv) Now() int64                  { return e.now }
func (e *fakeEnv) Send(c ConnID, f wire.Frame) { e.sent[c] = append(e.sent[c], f) }
func (e *fakeEnv) CloseConn(c ConnID)          { e.closed[c] = true }
func (e *fakeEnv) AllocConn() error            { return e.native.Alloc(e.connMem) }
func (e *fakeEnv) FreeConn()                   { e.native.Free(e.connMem) }
func (e *fakeEnv) Alloc(n int64) error         { return e.heap.Alloc(n) }
func (e *fakeEnv) Free(n int64)                { e.heap.Free(n) }

func (e *fakeEnv) deliveries(c ConnID) []wire.Deliver {
	var out []wire.Deliver
	for _, f := range e.sent[c] {
		// The broker emits pooled *wire.Deliver frames; the env records
		// them without releasing, so value copies here stay stable.
		if d, ok := f.(*wire.Deliver); ok {
			out = append(out, *d)
		}
	}
	return out
}

func (e *fakeEnv) lastFrame(c ConnID) wire.Frame {
	fs := e.sent[c]
	if len(fs) == 0 {
		return nil
	}
	return fs[len(fs)-1]
}

func newBroker(t *testing.T, heapLimit int64) (*Broker, *fakeEnv) {
	t.Helper()
	env := newFakeEnv(heapLimit)
	return New(env, DefaultConfig("b1")), env
}

func mustOpen(t *testing.T, b *Broker, id ConnID) {
	t.Helper()
	if err := b.OnConnOpen(id); err != nil {
		t.Fatalf("open %d: %v", id, err)
	}
	b.OnFrame(id, wire.Connect{ClientID: fmt.Sprintf("client-%d", id)})
}

func subscribe(t *testing.T, b *Broker, env *fakeEnv, c ConnID, subID int64, dest message.Destination, sel string) {
	t.Helper()
	b.OnFrame(c, wire.Subscribe{SubID: subID, Dest: dest, Selector: sel})
	for _, f := range env.sent[c] {
		if ok, isOK := f.(wire.SubOK); isOK && ok.SubID == subID {
			return
		}
	}
	t.Fatalf("subscribe %d on conn %d: no SubOK in %v", subID, c, env.sent[c])
}

func pub(b *Broker, c ConnID, dest message.Destination, props map[string]message.Value) *message.Message {
	m := message.NewText("payload")
	m.Dest = dest
	for k, v := range props {
		m.SetProperty(k, v)
	}
	b.OnFrame(c, wire.Publish{Seq: 1, Msg: m})
	return m
}

func TestConnectHandshake(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	f := env.lastFrame(1)
	if c, ok := f.(wire.Connected); !ok || c.BrokerID != "b1" {
		t.Fatalf("handshake reply = %v", f)
	}
}

func TestTopicFanout(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("power")
	for i := ConnID(1); i <= 3; i++ {
		mustOpen(t, b, i)
	}
	subscribe(t, b, env, 1, 10, topic, "")
	subscribe(t, b, env, 2, 20, topic, "")
	pub(b, 3, topic, nil)
	if len(env.deliveries(1)) != 1 || len(env.deliveries(2)) != 1 {
		t.Fatalf("fanout: %d, %d", len(env.deliveries(1)), len(env.deliveries(2)))
	}
	if len(env.deliveries(3)) != 0 {
		t.Fatal("publisher received its own message without subscribing")
	}
	// Publisher gets a PubAck.
	if _, ok := env.lastFrame(3).(wire.PubAck); !ok {
		t.Fatalf("no PubAck: %v", env.lastFrame(3))
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSelectorFiltering(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("power")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 10, topic, "id < 100")
	pub(b, 2, topic, map[string]message.Value{"id": message.Int(50)})
	pub(b, 2, topic, map[string]message.Value{"id": message.Int(500)})
	if got := len(env.deliveries(1)); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	if b.Stats().SelectorRejected != 1 {
		t.Fatalf("selectorRejected = %d", b.Stats().SelectorRejected)
	}
}

func TestInvalidSelectorRejected(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	b.OnFrame(1, wire.Subscribe{SubID: 5, Dest: message.Topic("t"), Selector: "id <"})
	if ok, is := env.lastFrame(1).(wire.SubOK); !is || ok.SubID != -5 {
		t.Fatalf("bad selector reply = %v", env.lastFrame(1))
	}
	// The failed subscription must not deliver.
	pub(b, 1, message.Topic("t"), nil)
	if len(env.deliveries(1)) != 0 {
		t.Fatal("rejected subscription delivered")
	}
}

func TestDeliveredMessageIsSharedAndFrozen(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, topic, "")
	sent := pub(b, 2, topic, map[string]message.Value{"id": message.Int(1)})
	d := env.deliveries(1)[0]
	if d.Msg != sent {
		t.Fatal("zero-copy delivery must share the published message by reference")
	}
	if !sent.Frozen() {
		t.Fatal("broker did not freeze the accepted message")
	}
}

func TestCloneDeliveriesRestoresPrivateCopies(t *testing.T) {
	env := newFakeEnv(0)
	cfg := DefaultConfig("b1")
	cfg.CloneDeliveries = true
	b := New(env, cfg)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, topic, "")
	sent := pub(b, 2, topic, map[string]message.Value{"id": message.Int(1)})
	d := env.deliveries(1)[0]
	if d.Msg == sent {
		t.Fatal("CloneDeliveries delivery aliases the published message")
	}
	if !d.Msg.Equal(sent) {
		t.Fatal("delivered clone differs")
	}
	if d.Msg.Frozen() {
		t.Fatal("clone of a frozen message must be mutable")
	}
}

func TestAckReleasesMemory(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, topic, "")
	base := env.heap.Used()
	pub(b, 2, topic, nil)
	if env.heap.Used() <= base {
		t.Fatal("pending delivery did not charge memory")
	}
	if b.PendingCount() != 1 {
		t.Fatalf("pending = %d", b.PendingCount())
	}
	tag := env.deliveries(1)[0].Tag
	b.OnFrame(1, wire.Ack{SubID: 1, Tags: []int64{tag}})
	if env.heap.Used() != base {
		t.Fatalf("ack did not free memory: %d vs %d", env.heap.Used(), base)
	}
	if b.PendingCount() != 0 || b.Stats().Acked != 1 {
		t.Fatalf("pending=%d acked=%d", b.PendingCount(), b.Stats().Acked)
	}
	// Double-ack and unknown tags are harmless.
	b.OnFrame(1, wire.Ack{SubID: 1, Tags: []int64{tag, 999}})
	b.OnFrame(1, wire.Ack{SubID: 42, Tags: []int64{1}})
	if b.Stats().Acked != 1 {
		t.Fatal("double ack counted")
	}
}

func TestConnectionMemoryLimit(t *testing.T) {
	env := newFakeEnv(0)
	env.native = simproc.NewHeap("native", 1<<20, 0) // 1 MB thread budget
	b := New(env, DefaultConfig("b1"))
	opened := 0
	var refuseErr error
	for i := ConnID(1); i <= 10; i++ {
		if err := b.OnConnOpen(i); err != nil {
			refuseErr = err
			break
		}
		opened++
	}
	if opened != 4 {
		t.Fatalf("opened %d connections on 1MB/256KB, want 4", opened)
	}
	if !errors.Is(refuseErr, ErrConnRefused) {
		t.Fatalf("refusal error = %v", refuseErr)
	}
	if b.Stats().RefusedConns != 1 {
		t.Fatalf("refused = %d", b.Stats().RefusedConns)
	}
	// Closing one frees room for one more.
	b.OnConnClose(1)
	if err := b.OnConnOpen(99); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

func TestConnCloseCleansSubscriptions(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, topic, "")
	pub(b, 2, topic, nil) // one pending delivery
	base := env.heap.Used()
	b.OnConnClose(1)
	if env.heap.Used() >= base {
		t.Fatal("close did not free pending + connection memory")
	}
	// Publishing afterwards delivers nowhere.
	pub(b, 2, topic, nil)
	if b.Stats().Delivered != 1 {
		t.Fatalf("delivered = %d after close", b.Stats().Delivered)
	}
	if len(b.Topics()) != 0 {
		t.Fatal("topic survived with zero subscribers")
	}
}

func TestUnsubscribe(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 7, topic, "")
	b.OnFrame(1, wire.Unsubscribe{SubID: 7})
	pub(b, 2, topic, nil)
	if len(env.deliveries(1)) != 0 {
		t.Fatal("unsubscribed consumer received message")
	}
}

func TestDuplicateSubIDDropsConnection(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	subscribe(t, b, env, 1, 7, message.Topic("t"), "")
	b.OnFrame(1, wire.Subscribe{SubID: 7, Dest: message.Topic("t2")})
	if !env.closed[1] {
		t.Fatal("duplicate sub id did not drop connection")
	}
}

func TestQueueRoundRobin(t *testing.T) {
	b, env := newBroker(t, 0)
	q := message.Queue("work")
	for i := ConnID(1); i <= 3; i++ {
		mustOpen(t, b, i)
	}
	subscribe(t, b, env, 1, 1, q, "")
	subscribe(t, b, env, 2, 2, q, "")
	for i := 0; i < 6; i++ {
		pub(b, 3, q, nil)
	}
	d1, d2 := len(env.deliveries(1)), len(env.deliveries(2))
	if d1 != 3 || d2 != 3 {
		t.Fatalf("round robin split %d/%d, want 3/3", d1, d2)
	}
}

func TestQueueBacklogDeliveredOnSubscribe(t *testing.T) {
	b, env := newBroker(t, 0)
	q := message.Queue("work")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	for i := 0; i < 4; i++ {
		pub(b, 2, q, nil)
	}
	if len(env.deliveries(1)) != 0 {
		t.Fatal("early delivery")
	}
	subscribe(t, b, env, 1, 1, q, "")
	if got := len(env.deliveries(1)); got != 4 {
		t.Fatalf("backlog drain = %d, want 4", got)
	}
}

func TestQueueSelectorSkipsToMatchingConsumer(t *testing.T) {
	b, env := newBroker(t, 0)
	q := message.Queue("work")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	mustOpen(t, b, 3)
	subscribe(t, b, env, 1, 1, q, "kind = 'a'")
	subscribe(t, b, env, 2, 2, q, "kind = 'b'")
	pub(b, 3, q, map[string]message.Value{"kind": message.String("b")})
	pub(b, 3, q, map[string]message.Value{"kind": message.String("b")})
	pub(b, 3, q, map[string]message.Value{"kind": message.String("c")}) // no taker
	if len(env.deliveries(1)) != 0 || len(env.deliveries(2)) != 2 {
		t.Fatalf("selector queue: %d/%d", len(env.deliveries(1)), len(env.deliveries(2)))
	}
}

func TestQueueBacklogCap(t *testing.T) {
	env := newFakeEnv(0)
	cfg := DefaultConfig("b1")
	cfg.MaxQueueBacklog = 2
	b := New(env, cfg)
	mustOpen(t, b, 1)
	for i := 0; i < 5; i++ {
		pub(b, 1, message.Queue("q"), nil)
	}
	if b.Stats().DroppedBacklog != 3 {
		t.Fatalf("droppedBacklog = %d, want 3", b.Stats().DroppedBacklog)
	}
}

func TestDurableSubscriptionBuffersWhileOffline(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: topic, Durable: true, DurableName: "d1"})
	// Disconnect; messages published now must buffer.
	b.OnConnClose(1)
	pub(b, 2, topic, nil)
	pub(b, 2, topic, nil)
	// Reconnect with the same durable name.
	mustOpen(t, b, 3)
	b.OnFrame(3, wire.Subscribe{SubID: 9, Dest: topic, Durable: true, DurableName: "d1"})
	if got := len(env.deliveries(3)); got != 2 {
		t.Fatalf("durable replay = %d, want 2", got)
	}
	// Unsubscribe destroys the durable state; nothing buffers afterwards.
	b.OnFrame(3, wire.Unsubscribe{SubID: 9})
	pub(b, 2, topic, nil)
	mustOpen(t, b, 4)
	b.OnFrame(4, wire.Subscribe{SubID: 1, Dest: topic, Durable: true, DurableName: "d1"})
	if got := len(env.deliveries(4)); got != 0 {
		t.Fatalf("destroyed durable replayed %d", got)
	}
}

func TestDurableSecondActiveConsumerRejected(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: topic, Durable: true, DurableName: "d1"})
	b.OnFrame(2, wire.Subscribe{SubID: 2, Dest: topic, Durable: true, DurableName: "d1"})
	if ok, is := env.lastFrame(2).(wire.SubOK); !is || ok.SubID != -2 {
		t.Fatalf("second durable consumer not rejected: %v", env.lastFrame(2))
	}
}

func TestDurableSelectorChangeResetsBacklog(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: topic, Durable: true, DurableName: "d1", Selector: "id = 1"})
	b.OnConnClose(1)
	pub(b, 2, topic, map[string]message.Value{"id": message.Int(1)})
	// Re-attach with a different selector: JMS recreates the durable sub.
	mustOpen(t, b, 3)
	b.OnFrame(3, wire.Subscribe{SubID: 1, Dest: topic, Durable: true, DurableName: "d1", Selector: "id = 2"})
	if got := len(env.deliveries(3)); got != 0 {
		t.Fatalf("recreated durable replayed %d stale messages", got)
	}
}

func TestMessageExpiration(t *testing.T) {
	b, env := newBroker(t, 0)
	topic := message.Topic("t")
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, topic, "")
	env.now = 1000
	m := message.NewText("old")
	m.Dest = topic
	m.Expiration = 500 // already past
	b.OnFrame(2, wire.Publish{Seq: 1, Msg: m})
	if len(env.deliveries(1)) != 0 || b.Stats().Expired != 1 {
		t.Fatalf("expired message delivered; stats=%+v", b.Stats())
	}
}

func TestPingPong(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	b.OnFrame(1, wire.Ping{Token: 42})
	if p, ok := env.lastFrame(1).(wire.Pong); !ok || p.Token != 42 {
		t.Fatalf("pong = %v", env.lastFrame(1))
	}
}

func TestClientClose(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	b.OnFrame(1, wire.Close{})
	if !env.closed[1] {
		t.Fatal("Close frame did not close transport")
	}
	if b.Stats().Connections != 0 {
		t.Fatal("connection survived Close")
	}
}

func TestFramesOnUnknownConnIgnored(t *testing.T) {
	b, _ := newBroker(t, 0)
	b.OnFrame(99, wire.Publish{Seq: 1, Msg: message.NewText("x")}) // must not panic
	b.OnConnClose(99)
}

func TestDuplicateConnOpenPanics(t *testing.T) {
	b, _ := newBroker(t, 0)
	mustOpen(t, b, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate conn open did not panic")
		}
	}()
	_ = b.OnConnOpen(1)
}

func TestDeliveryOOMCountsDrop(t *testing.T) {
	env := newFakeEnv(100 << 10) // 100 KB message heap
	b := New(env, DefaultConfig("b1"))
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, message.Topic("t"), "")
	// Fill the heap with a big pending message so the next delivery OOMs.
	big := message.NewBytes(make([]byte, 90<<10))
	big.Dest = message.Topic("t")
	b.OnFrame(2, wire.Publish{Seq: 1, Msg: big})
	b.OnFrame(2, wire.Publish{Seq: 2, Msg: big})
	if b.Stats().DroppedOOM == 0 {
		t.Fatalf("expected OOM drop, stats=%+v", b.Stats())
	}
}

func TestTopicsAndPeakConnections(t *testing.T) {
	b, env := newBroker(t, 0)
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, message.Topic("a"), "")
	subscribe(t, b, env, 2, 2, message.Topic("b"), "")
	if got := len(b.Topics()); got != 2 {
		t.Fatalf("topics = %d", got)
	}
	b.OnConnClose(1)
	b.OnConnClose(2)
	st := b.Stats()
	if st.PeakConnections != 2 || st.Connections != 0 {
		t.Fatalf("peak=%d now=%d", st.PeakConnections, st.Connections)
	}
}

func TestInterestCallback(t *testing.T) {
	b, env := newBroker(t, 0)
	var events []string
	b.SetInterestFunc(func(topic string, add bool) {
		events = append(events, fmt.Sprintf("%s:%v", topic, add))
	})
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	subscribe(t, b, env, 1, 1, message.Topic("t"), "")
	subscribe(t, b, env, 2, 2, message.Topic("t"), "") // second sub: no event
	b.OnConnClose(1)                                   // still one sub: no event
	b.OnConnClose(2)                                   // last sub gone: event
	want := []string{"t:true", "t:false"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("interest events = %v", events)
	}
}

// Property: after any sequence of publish/ack pairs, heap usage returns to
// the post-subscription baseline (no leaks in pending bookkeeping).
func TestPropertyNoMemoryLeak(t *testing.T) {
	f := func(sizes []uint8) bool {
		env := newFakeEnv(0)
		b := New(env, DefaultConfig("b1"))
		if err := b.OnConnOpen(1); err != nil {
			return false
		}
		if err := b.OnConnOpen(2); err != nil {
			return false
		}
		b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: message.Topic("t")})
		base := env.heap.Used()
		for i, s := range sizes {
			m := message.NewBytes(make([]byte, int(s)))
			m.Dest = message.Topic("t")
			b.OnFrame(2, wire.Publish{Seq: int64(i), Msg: m})
		}
		// Ack everything delivered.
		var tags []int64
		for _, d := range env.deliveries(1) {
			tags = append(tags, d.Tag)
		}
		b.OnFrame(1, wire.Ack{SubID: 1, Tags: tags})
		return env.heap.Used() == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue semantics deliver each message exactly once across any
// number of consumers.
func TestPropertyQueueExactlyOnce(t *testing.T) {
	f := func(nConsumers uint8, nMsgs uint8) bool {
		nc := int(nConsumers%5) + 1
		nm := int(nMsgs)
		env := newFakeEnv(0)
		b := New(env, DefaultConfig("b1"))
		q := message.Queue("work")
		for i := 0; i < nc; i++ {
			if err := b.OnConnOpen(ConnID(i + 1)); err != nil {
				return false
			}
			b.OnFrame(ConnID(i+1), wire.Subscribe{SubID: 1, Dest: q})
		}
		if err := b.OnConnOpen(100); err != nil {
			return false
		}
		for i := 0; i < nm; i++ {
			m := message.NewText("x")
			m.Dest = q
			m.SetProperty("n", message.Int(int32(i)))
			b.OnFrame(100, wire.Publish{Seq: int64(i), Msg: m})
		}
		seen := make(map[int64]int)
		total := 0
		for i := 0; i < nc; i++ {
			for _, d := range env.deliveries(ConnID(i + 1)) {
				v, _ := d.Msg.Property("n")
				n, _ := v.AsLong()
				seen[n]++
				total++
			}
		}
		if total != nm {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPublishFanout10(b *testing.B) {
	env := newFakeEnv(0)
	br := New(env, DefaultConfig("b1"))
	topic := message.Topic("t")
	for i := ConnID(1); i <= 10; i++ {
		if err := br.OnConnOpen(i); err != nil {
			b.Fatal(err)
		}
		br.OnFrame(i, wire.Subscribe{SubID: 1, Dest: topic, Selector: "id<10000"})
	}
	if err := br.OnConnOpen(99); err != nil {
		b.Fatal(err)
	}
	m := message.NewMap()
	m.Dest = topic
	m.SetProperty("id", message.Int(5))
	m.MapSet("power", message.Double(1.5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.OnFrame(99, wire.Publish{Seq: int64(i), Msg: m})
		// Drain sent buffers so memory stays flat.
		for c := ConnID(1); c <= 10; c++ {
			for _, d := range env.deliveries(c) {
				br.OnFrame(c, wire.Ack{SubID: 1, Tags: []int64{d.Tag}})
			}
			env.sent[c] = env.sent[c][:0]
		}
	}
}
