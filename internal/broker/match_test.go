package broker

import (
	"fmt"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Tests for the content-based matching index on the publish path. The
// obligations: indexed routing must be observably identical to the
// LinearMatch baseline — including Stats' SelectorRejected, which the
// indexed path bulk-accounts for skipped groups — and the Match*
// meters must prove the index actually skips non-candidate groups.

// TestMatchIndexLinearEquivalenceRandomized drives the randomized
// routing storm through an indexed broker and a LinearMatch broker
// (both on the snapshot read path): transcripts, pending counts, heap
// usage and stats — SelectorRejected included — must be identical, with
// only the Match* meters (zeroed by clearLockMeters) allowed to differ.
func TestMatchIndexLinearEquivalenceRandomized(t *testing.T) {
	runRoutingEquivalence(t, func(cfg *Config) {}, func(cfg *Config) {
		cfg.LinearMatch = true
	})
}

// TestMatchIndexMeters pins the index's observable contract on a hot
// topic with many disjoint equality selectors: indexed mode evaluates
// only the candidate groups per publish (here exactly one, plus the
// always-delivered fast subscription outside the meters), while
// LinearMatch evaluates every group; both modes deliver identically and
// reject identically.
func TestMatchIndexMeters(t *testing.T) {
	const groups = 64
	run := func(linear bool) Stats {
		env := newFakeEnv(0)
		cfg := DefaultConfig("b")
		cfg.Shards = 4
		cfg.LinearMatch = linear
		b := New(env, cfg)
		mustOpen(t, b, 1)
		mustOpen(t, b, 2)
		for i := 0; i < groups; i++ {
			b.OnFrame(2, wire.Subscribe{
				SubID:    int64(i + 1),
				Dest:     message.Topic("hot"),
				Selector: fmt.Sprintf("key = 'sub-%d'", i),
			})
		}
		for i := 0; i < groups; i++ {
			publishOn(b, 1, fmt.Sprintf("m%d", i), message.Topic("hot"), map[string]message.Value{
				"key": message.String(fmt.Sprintf("sub-%d", i)),
			})
		}
		return b.Stats()
	}

	idx, lin := run(false), run(true)
	if idx.Delivered != groups || lin.Delivered != groups {
		t.Fatalf("delivered: indexed %d, linear %d, want %d each", idx.Delivered, lin.Delivered, groups)
	}
	if idx.SelectorRejected != lin.SelectorRejected {
		t.Fatalf("SelectorRejected: indexed %d != linear %d", idx.SelectorRejected, lin.SelectorRejected)
	}
	if want := uint64(groups * groups); lin.MatchProgramEvals != want {
		t.Fatalf("linear MatchProgramEvals = %d, want %d", lin.MatchProgramEvals, want)
	}
	if want := uint64(groups); idx.MatchProgramEvals != want {
		t.Fatalf("indexed MatchProgramEvals = %d, want %d (one candidate per publish)", idx.MatchProgramEvals, want)
	}
	if idx.MatchIndexCandidates != idx.MatchProgramEvals {
		t.Fatalf("MatchIndexCandidates %d != MatchProgramEvals %d", idx.MatchIndexCandidates, idx.MatchProgramEvals)
	}
	if want := uint64(groups * (groups - 1)); idx.MatchGroupsSkipped != want {
		t.Fatalf("MatchGroupsSkipped = %d, want %d", idx.MatchGroupsSkipped, want)
	}
	if lin.MatchIndexCandidates != 0 || lin.MatchGroupsSkipped != 0 || lin.MatchDurablesSkipped != 0 {
		t.Fatalf("linear mode moved index meters: %+v", lin)
	}
	if idx.MatchDurablesSkipped != 0 {
		t.Fatalf("MatchDurablesSkipped = %d, want 0 (no durables in play)", idx.MatchDurablesSkipped)
	}
}

// TestMatchIndexDurableCandidates covers the durable tail of the index
// seq space: buffering durables behind non-matching selectors are
// skipped without evaluation, matching ones still buffer.
func TestMatchIndexDurableCandidates(t *testing.T) {
	env := newFakeEnv(0)
	cfg := DefaultConfig("b")
	cfg.Shards = 4
	b := New(env, cfg)
	mustOpen(t, b, 1)
	mustOpen(t, b, 2)
	for i := 0; i < 8; i++ {
		b.OnFrame(2, wire.Subscribe{
			SubID:       int64(i + 1),
			Dest:        message.Topic("hot"),
			Selector:    fmt.Sprintf("key = 'dur-%d'", i),
			Durable:     true,
			DurableName: fmt.Sprintf("dur-%d", i),
		})
	}
	b.OnConnClose(2) // all durables now buffering

	before := b.Stats()
	publishOn(b, 1, "m", message.Topic("hot"), map[string]message.Value{
		"key": message.String("dur-3"),
	})
	after := b.Stats()

	if got := after.MatchProgramEvals - before.MatchProgramEvals; got != 1 {
		t.Fatalf("evaluated %d durables, want 1 candidate", got)
	}
	if got := after.MatchDurablesSkipped - before.MatchDurablesSkipped; got != 7 {
		t.Fatalf("skipped %d durables, want 7", got)
	}
	if got := after.MatchGroupsSkipped - before.MatchGroupsSkipped; got != 0 {
		t.Fatalf("MatchGroupsSkipped moved by %d, want 0 (durables are not groups)", got)
	}
	dumps := b.DumpDurables()
	stored := 0
	for _, d := range dumps {
		stored += len(d.Backlog)
		if len(d.Backlog) > 0 && d.Name != "dur-3" {
			t.Fatalf("durable %s buffered a non-matching message", d.Name)
		}
	}
	if stored != 1 {
		t.Fatalf("stored %d backlog messages, want 1", stored)
	}
}
