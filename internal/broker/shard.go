// Destination layer, part 1: the shard partitioning. Each shard is a
// lock domain owning the topic, queue and durable-by-topic indexes of
// the destinations that hash to it. Publishes to destinations on
// different shards touch different locks and therefore execute
// concurrently; everything about one destination stays inside one shard,
// so per-destination semantics are identical for any shard count.

package broker

import (
	"sync"

	"gridmon/internal/message"
	"gridmon/internal/shardhash"
)

type shard struct {
	mu sync.Mutex

	topics map[string]*topicState
	queues map[string]*queueState
	// durablesByTopic indexes durables by their topic (in creation
	// order) so publish touches only the durables of the published
	// topic. Unused in legacy mode, which scans the global durable
	// directory.
	durablesByTopic map[string][]*durableState
}

func newShard() *shard {
	return &shard{
		topics:          make(map[string]*topicState),
		queues:          make(map[string]*queueState),
		durablesByTopic: make(map[string][]*durableState),
	}
}

// fnv1a routes destination names to shards (the repo-wide shard hash,
// allocation-free).
func fnv1a(s string) uint32 { return shardhash.FNV1a(s) }

// shardFor returns the shard owning a destination name.
func (b *Broker) shardFor(name string) *shard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	return b.shards[fnv1a(name)%uint32(len(b.shards))]
}

// ShardOf reports which shard index a destination name routes to.
// Load-test topologies and tests use it to spread (or concentrate)
// destinations across lock domains. Shard-safe.
func (b *Broker) ShardOf(name string) int {
	if len(b.shards) == 1 {
		return 0
	}
	return int(fnv1a(name) % uint32(len(b.shards)))
}

// NumShards reports the destination-layer partition count. Shard-safe.
func (b *Broker) NumShards() int { return len(b.shards) }

// routeLocal fans a frozen message out to the local subscribers of its
// destination, under the destination shard's lock. With forward set (a
// local publish, not an injected peer message) the broker-network
// forwarder runs first, under the same lock hold, so peer fan-out for a
// destination is totally ordered with its local deliveries — the
// shard-safe forwarding seam. Expired messages are dropped before
// forwarding: a message no peer could deliver is not worth wire time.
func (b *Broker) routeLocal(m *message.Message, forward bool) {
	if m.Expiration > 0 && b.env.Now() > m.Expiration {
		b.stats.expired.Add(1)
		return
	}
	sh := b.shardFor(m.Dest.Name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if forward {
		if fw := b.forwarder.Load(); fw != nil {
			(*fw).OnLocalPublish(m)
		}
	}
	switch m.Dest.Kind {
	case message.TopicKind:
		if b.cfg.LegacyLinearScan {
			b.routeTopicLegacy(sh, m)
			return
		}
		b.routeTopic(sh, m)
	case message.QueueKind:
		q := sh.queues[m.Dest.Name]
		if q == nil {
			q = &queueState{name: m.Dest.Name}
			sh.queues[m.Dest.Name] = q
		}
		b.enqueue(q, m)
		b.drainQueue(q)
	}
}
