// Destination layer, part 1: the shard partitioning. Each shard is a
// lock domain owning the topic, queue and durable-by-topic indexes of
// the destinations that hash to it. Publishes to destinations on
// different shards touch different locks and therefore execute
// concurrently; everything about one destination stays inside one shard,
// so per-destination semantics are identical for any shard count.

package broker

import (
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/message"
	"gridmon/internal/shardhash"
)

type shard struct {
	mu sync.Mutex

	topics map[string]*topicState
	queues map[string]*queueState
	// durablesByTopic indexes durables by their topic (in creation
	// order) so publish touches only the durables of the published
	// topic. Unused in legacy mode, which scans the global durable
	// directory.
	durablesByTopic map[string][]*durableState

	// snap is the copy-on-write routing snapshot the lock-free publish
	// path reads (see snapshot.go). Stored only under mu; loaded
	// without it.
	snap atomic.Pointer[shardSnapshot]
}

func newShard() *shard {
	return &shard{
		topics:          make(map[string]*topicState),
		queues:          make(map[string]*queueState),
		durablesByTopic: make(map[string][]*durableState),
	}
}

// fnv1a routes destination names to shards (the repo-wide shard hash,
// allocation-free).
func fnv1a(s string) uint32 { return shardhash.FNV1a(s) }

// shardFor returns the shard owning a destination name.
func (b *Broker) shardFor(name string) *shard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	return b.shards[fnv1a(name)%uint32(len(b.shards))]
}

// ShardOf reports which shard index a destination name routes to.
// Load-test topologies and tests use it to spread (or concentrate)
// destinations across lock domains. Shard-safe.
func (b *Broker) ShardOf(name string) int {
	if len(b.shards) == 1 {
		return 0
	}
	return int(fnv1a(name) % uint32(len(b.shards)))
}

// NumShards reports the destination-layer partition count. Shard-safe.
func (b *Broker) NumShards() int { return len(b.shards) }

// lockShard acquires a shard's lock through the contention meter: every
// metered acquisition is counted, and acquisitions that had to wait
// additionally record the wait time, so /stats exposes where shard
// locks burn time. Only frame-processing paths (publish, subscribe,
// unsubscribe, durable attach) are metered; whole-broker accessors and
// restore/dump take sh.mu directly so the counters describe the hot
// paths, not administrative sweeps.
func (b *Broker) lockShard(sh *shard) {
	if sh.mu.TryLock() {
		b.stats.shardLockAcq.Add(1)
		return
	}
	start := time.Now()
	sh.mu.Lock()
	b.stats.shardLockAcq.Add(1)
	b.stats.shardLockContended.Add(1)
	b.stats.shardLockWaitNs.Add(uint64(time.Since(start).Nanoseconds()))
}

// routeLocal fans a frozen message out to the local subscribers of its
// destination. Topic publishes take the lock-free read path by default:
// the forwarder seam (itself an atomic pointer) fires first, then
// routing runs from the shard's copy-on-write snapshot without touching
// shard.mu — concurrent publishes to one topic no longer serialize.
// Queue publishes, and topic publishes in the LockedReadPath /
// LegacyLinearScan baselines, still run under the destination shard's
// lock; with forward set the forwarder runs under that same lock hold,
// so in the locked modes peer fan-out for a destination stays totally
// ordered with its local deliveries. (In snapshot mode the ordering
// guarantee is per-publisher, which is all JMS promises.) Expired
// messages are dropped before forwarding: a message no peer could
// deliver is not worth wire time.
func (b *Broker) routeLocal(m *message.Message, forward bool) {
	if m.Expiration > 0 && b.env.Now() > m.Expiration {
		b.stats.expired.Add(1)
		return
	}
	sh := b.shardFor(m.Dest.Name)
	if m.Dest.Kind == message.TopicKind && !b.cfg.LockedReadPath && !b.cfg.LegacyLinearScan {
		if forward {
			if fw := b.forwarder.Load(); fw != nil {
				(*fw).OnLocalPublish(m)
			}
		}
		b.routeTopicSnapshot(sh, m)
		return
	}
	b.lockShard(sh)
	defer sh.mu.Unlock()
	if forward {
		if fw := b.forwarder.Load(); fw != nil {
			(*fw).OnLocalPublish(m)
		}
	}
	switch m.Dest.Kind {
	case message.TopicKind:
		// The read-path lock meter: this acquisition existed only to
		// *read* the routing indexes — exactly what snapshot mode
		// eliminates (gridbench contention asserts it stays 0 there).
		b.stats.readLockAcq.Add(1)
		if b.cfg.LegacyLinearScan {
			b.routeTopicLegacy(sh, m)
			return
		}
		b.routeTopic(sh, m)
	case message.QueueKind:
		q := sh.queues[m.Dest.Name]
		if q == nil {
			q = &queueState{name: m.Dest.Name}
			sh.queues[m.Dest.Name] = q
		}
		b.enqueue(q, m)
		b.drainQueue(q)
	}
}
