// Destination layer, part 5: the lock-free publish read path. Each
// shard publishes a copy-on-write snapshot of its topic routing state —
// per topic, the fast set, the selector groups and the buffering
// (inactive) durables — through an atomic.Pointer. routeLocal loads the
// snapshot and fans out without taking shard.mu at all; mutations
// (subscribe/unsubscribe/durable churn, still under shard.mu) rebuild
// only the touched topic's slices and republish, so the shard lock is a
// pure write-side lock and concurrent publishes to the *same* topic no
// longer serialize on it.
//
// The snapshot is two-level: an immutable topic→entry map (copied only
// when a topic appears or disappears) whose entries hold the per-topic
// route behind their own atomic.Pointer (swapped on subscription churn
// within an existing topic). Readers therefore pay two atomic loads per
// publish; writers pay one map copy only on topic create/delete.
//
// Consistency contract (standard RCU semantics): a publish concurrent
// with an index mutation may route against the immediately-prior index
// state; once the mutating call returns, every later publish observes
// it (the atomic store/load pair is the happens-before edge). Delivery
// state itself is not snapshotted — sub.pending/nextTag are guarded by
// the per-subscription leaf lock and durable backlogs by the
// per-durable leaf lock, so racing publishes to one subscriber stay
// safe, and a subscription dropped mid-publish is skipped via its
// detached flag instead of leaking pending allocations.
//
// Config.LockedReadPath restores the locked read path (routing under
// shard.mu, exactly the PR 3 architecture) as the measured A/B
// baseline; Config.LegacyLinearScan implies it.

package broker

import (
	"slices"

	"gridmon/internal/message"
	"gridmon/internal/predindex"
	"gridmon/internal/selector"
	"sync/atomic"
)

// shardSnapshot is one shard's published routing state. The map is
// immutable once stored; entries are shared across snapshot generations
// and updated in place through their atomic route pointer.
type shardSnapshot struct {
	topics map[string]*topicEntry
}

// topicEntry is the stable per-topic slot in the snapshot map. route is
// never nil once the entry is reachable from a stored snapshot.
type topicEntry struct {
	route atomic.Pointer[topicRoute]
}

// topicRoute is the immutable fan-out plan for one topic: a frozen copy
// of the index slices, in the same deterministic order the locked path
// iterates (fast set in subscribe order, groups in first-appearance
// order, durables in creation order), so snapshot and locked routing
// deliver identically for any single caller.
type topicRoute struct {
	fast     []*subscription
	groups   []routeGroup
	durables []routeDurable

	// idx is the content-based matching index over groups (seqs
	// 0..len(groups)-1) and durables (seqs len(groups)..), built at
	// route-patch time unless Config.LinearMatch; nil when disabled or
	// when there is nothing to index. Immutable, like the rest of the
	// route (predindex is shard-safe after Build).
	idx *predindex.Index
	// groupSubs is the total subscriber count across groups, so the
	// indexed path can bulk-account SelectorRejected for the groups the
	// index skipped without visiting them.
	groupSubs int
}

// routeGroup mirrors selGroup with a copied member slice (the live
// group's slice is mutated in place under shard.mu).
type routeGroup struct {
	prog *selector.Program
	subs []*subscription
}

// routeDurable is one durable that was buffering (no active consumer)
// when the route was built. sel is captured at build time because a
// recreate may swap d.sel; the refresh that recreate triggers
// republishes the route.
type routeDurable struct {
	d   *durableState
	sel *selector.Selector
}

// refreshTopicRoute rebuilds one topic's copy-on-write route from the
// shard's locked index state and publishes it to the lock-free read
// path. Every mutation of a topic's subscription index, its by-topic
// durable index, or a durable's active flag calls this before releasing
// the shard lock — the lock is what single-files snapshot writers.
// Shard lock held.
func (b *Broker) refreshTopicRoute(sh *shard, name string) {
	t := sh.topics[name]
	durables := sh.durablesByTopic[name]
	inactive := 0
	for _, d := range durables {
		if d.active == nil {
			inactive++
		}
	}

	var rt *topicRoute
	if t != nil || inactive > 0 {
		rt = &topicRoute{}
		var keys []predindex.Key
		buildIdx := !b.cfg.LinearMatch
		if t != nil {
			rt.fast = slices.Clone(t.fast)
			if len(t.groups) > 0 {
				rt.groups = make([]routeGroup, 0, len(t.groups))
				if buildIdx {
					keys = make([]predindex.Key, 0, len(t.groups)+inactive)
				}
				for _, g := range t.groups {
					rt.groups = append(rt.groups, routeGroup{prog: g.prog, subs: slices.Clone(g.subs)})
					rt.groupSubs += len(g.subs)
					if buildIdx {
						keys = append(keys, g.matchKey)
					}
				}
			}
		}
		if inactive > 0 {
			rt.durables = make([]routeDurable, 0, inactive)
			for _, d := range durables {
				if d.active == nil {
					rt.durables = append(rt.durables, routeDurable{d: d, sel: d.sel})
					if buildIdx {
						keys = append(keys, d.sel.RequiredKey())
					}
				}
			}
		}
		// Index seqs: groups first (0..G-1), then durables (G..G+D-1) —
		// the same order the linear scan visits, so sorted candidate
		// seqs reproduce linear delivery order exactly.
		if buildIdx && len(keys) > 0 {
			rt.idx = predindex.Build(keys)
		}
	}

	cur := sh.snap.Load()
	if rt == nil {
		// Topic gone: drop its entry (map copy), if it ever had one.
		if cur == nil {
			return
		}
		if _, ok := cur.topics[name]; !ok {
			return
		}
		next := make(map[string]*topicEntry, len(cur.topics)-1)
		for k, v := range cur.topics {
			if k != name {
				next[k] = v
			}
		}
		sh.snap.Store(&shardSnapshot{topics: next})
		return
	}
	if cur != nil {
		if e, ok := cur.topics[name]; ok {
			// Existing topic: swap its route in place, no map copy.
			e.route.Store(rt)
			return
		}
	}
	// New topic: entry is fully initialized before the map that makes it
	// reachable is published.
	e := &topicEntry{}
	e.route.Store(rt)
	var next map[string]*topicEntry
	if cur == nil {
		next = map[string]*topicEntry{name: e}
	} else {
		next = make(map[string]*topicEntry, len(cur.topics)+1)
		for k, v := range cur.topics {
			next[k] = v
		}
		next[name] = e
	}
	sh.snap.Store(&shardSnapshot{topics: next})
}

// routeTopicSnapshot is the lock-free topic fan-out: identical routing
// to routeTopic, driven by the shard's published snapshot instead of
// the locked indexes. No shard lock is taken; deliveries synchronize on
// the per-subscription lock and durable stores on the per-durable lock.
//
// With the parallel fan-out engine enabled (fanplan.go), matching runs
// here on the publishing goroutine exactly as below, but matched
// subscriptions are collected into a pooled plan and delivered by
// execFanPlan — per-frame in matched order below the threshold, as
// per-connection batched runs across the worker pool above it. Durable
// stores always happen inline: they are leaf-locked, rare, and keeping
// them on the publisher keeps backlog order identical across modes.
func (b *Broker) routeTopicSnapshot(sh *shard, m *message.Message) {
	snap := sh.snap.Load()
	if snap == nil {
		return
	}
	e := snap.topics[m.Dest.Name]
	if e == nil {
		return
	}
	rt := e.route.Load()
	if rt == nil {
		return
	}
	cost := int64(m.EncodedSize()) + b.cfg.MemPerPendingOverhead
	var plan *fanPlan
	if b.fanPool != nil {
		plan = b.getFanPlan()
	}
	for _, sub := range rt.fast {
		if plan != nil {
			plan.add(sub)
		} else {
			b.deliverCost(sub, m, cost)
		}
	}
	if rt.idx != nil {
		b.routeMatchIndexed(rt, m, cost, plan)
	} else {
		if n := len(rt.groups) + len(rt.durables); n > 0 {
			b.stats.matchProgramEvals.Add(uint64(n))
		}
		for _, g := range rt.groups {
			if g.prog.Matches(m) {
				for _, sub := range g.subs {
					if plan != nil {
						plan.add(sub)
					} else {
						b.deliverCost(sub, m, cost)
					}
				}
			} else {
				b.stats.selectorRejected.Add(uint64(len(g.subs)))
			}
		}
		for _, rd := range rt.durables {
			if rd.sel.Matches(m) {
				// storeDurable re-checks "still buffering" under the durable's
				// lock: a consumer that attached after this route was built
				// owns delivery now, so the store is skipped.
				b.storeDurable(rd.d, m, cost)
			}
		}
	}
	if plan != nil {
		b.execFanPlan(plan, m, cost)
		b.putFanPlan(plan)
	}
}

// matchScratch is the pooled per-publish scratch of the indexed route:
// the candidate buffer and the probe adapter live in one pooled struct
// so handing &sc.probe to the index costs no allocation.
type matchScratch struct {
	buf   []int32
	probe msgProbe
}

// msgProbe adapts a message to the index's attribute-probe interface.
type msgProbe struct{ m *message.Message }

func (p *msgProbe) ProbeAttr(attr string) (predindex.Value, bool) {
	return selector.ProbeValue(p.m, attr)
}

// routeMatchIndexed fans a message out through the route's matching
// index: only candidate groups/durables are evaluated, in the same
// first-appearance order the linear scan uses (candidates arrive
// seq-sorted), so delivery order — and any single-caller run — is
// bit-identical to the linear path. Groups the index skipped still
// account their subscribers into SelectorRejected, keeping Stats
// comparable across modes. With plan non-nil, matched subscriptions
// are collected for the parallel fan-out engine instead of delivered
// inline (durable stores stay inline in both cases).
func (b *Broker) routeMatchIndexed(rt *topicRoute, m *message.Message, cost int64, plan *fanPlan) {
	sc, _ := b.matchScratch.Get().(*matchScratch)
	if sc == nil {
		sc = &matchScratch{}
	}
	sc.probe.m = m
	cands := rt.idx.Candidates(&sc.probe, sc.buf[:0])
	nG := len(rt.groups)
	candGroups := 0
	candGroupSubs := 0
	for _, ci := range cands {
		if int(ci) < nG {
			g := &rt.groups[ci]
			candGroups++
			candGroupSubs += len(g.subs)
			if g.prog.Matches(m) {
				for _, sub := range g.subs {
					if plan != nil {
						plan.add(sub)
					} else {
						b.deliverCost(sub, m, cost)
					}
				}
			} else {
				b.stats.selectorRejected.Add(uint64(len(g.subs)))
			}
		} else if rd := &rt.durables[int(ci)-nG]; rd.sel.Matches(m) {
			// storeDurable re-checks "still buffering" under the
			// durable's lock, as on the linear path.
			b.storeDurable(rd.d, m, cost)
		}
	}
	if n := len(cands); n > 0 {
		b.stats.matchProgramEvals.Add(uint64(n))
		b.stats.matchIndexCandidates.Add(uint64(n))
	}
	if skipped := nG - candGroups; skipped > 0 {
		b.stats.matchGroupsSkipped.Add(uint64(skipped))
	}
	if skipped := len(rt.durables) - (len(cands) - candGroups); skipped > 0 {
		b.stats.matchDurablesSkipped.Add(uint64(skipped))
	}
	if rejected := rt.groupSubs - candGroupSubs; rejected > 0 {
		// Subscribers of skipped groups were rejected by their selector
		// (the index proved the program could not return TRUE), exactly
		// as the linear scan would have counted them.
		b.stats.selectorRejected.Add(uint64(rejected))
	}
	sc.probe.m = nil
	sc.buf = cands[:0]
	b.matchScratch.Put(sc)
}
