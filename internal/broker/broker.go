// Package broker implements the NaradaBrokering-style message broker at
// the heart of the reproduction: topic and queue destinations, per-
// subscription JMS selectors, AUTO/CLIENT acknowledgement bookkeeping,
// durable subscriptions, message expiration, and per-connection /
// per-pending-message memory accounting.
//
// The broker core is written sans-I/O: it consumes protocol frames via
// OnFrame and emits frames through an Env interface. The same core runs
// under the discrete-event simulator (package simbroker), where Env
// charges virtual CPU time and JVM heap, and behind a real TCP listener
// (cmd/naradad), where Env writes to sockets. Memory accounting is what
// produces the paper's scalability cliff: each connection costs a thread
// stack, so a 1 GB heap refuses new connections near 4000 of them, exactly
// as the paper's broker "ran out of memory to create new threads to serve
// more incoming connections".
//
// # Three layers
//
// The core is split into three explicit layers:
//
//   - The session layer (sessions.go) owns the connection table,
//     per-connection subscription registries, per-subscription ack
//     bookkeeping, and admission/memory accounting (OnConnOpen /
//     OnConnClose / handleSubscribe / handleAck).
//   - The destination layer (shard.go, topics.go, queues.go,
//     durables.go) owns topic, queue and durable state. It is
//     partitioned into Config.Shards lock-guarded shards keyed by
//     destination-name hash; each shard owns the subscription indexes
//     and backlogs of its destinations, so publishes to destinations on
//     different shards execute concurrently on different cores.
//   - The egress layer (stats.go, fanplan.go) emits Deliver frames —
//     or, when the parallel fan-out engine groups a wide fan-out into
//     per-connection runs, DeliverBatch carriers — and keeps all
//     counters in atomics, so Stats() and PendingCount() are safe to
//     call from any goroutine at any time.
//
// # Concurrency contract
//
// The broker takes its internal locks unconditionally, so OnFrame,
// OnConnOpen and OnConnClose are safe to call from any number of
// goroutines provided (a) the Env implementation is itself safe for
// concurrent use and (b) frames of one connection are delivered by a
// single goroutine at a time (every transport reads a connection with
// one reader). Lock order is durableMu → shard.mu → {conn.mu, sub.mu,
// durableState.mu}; the latter three are leaf locks — nothing is ever
// acquired while holding one, and they never nest with each other. Env
// methods are invoked with broker locks held (on the lock-free publish
// path, only a subscription or durable leaf lock) and must not call
// back into the broker synchronously (bindings that need to drop a
// connection from inside Env.Send defer the OnConnClose to another
// goroutine).
//
// Topic publishes do not take shard locks at all by default: routing
// reads a copy-on-write snapshot published through an atomic pointer
// (snapshot.go), and per-subscriber delivery state synchronizes on the
// leaf locks. The shard lock remains the write-side lock for every
// index mutation (subscribe/unsubscribe/durable churn) and for queue
// operations, whose enqueue/drain cycle is mutation-heavy.
// Config.LockedReadPath restores lock-held routing as the measured
// baseline, and Stats meters both paths (ReadLockAcquisitions,
// ShardLock*).
//
// With a single calling goroutine — the discrete-event simulator's
// kernel, or a binding in Config.SerialCore mode — execution is
// bit-for-bit identical for any shard count, which is what keeps the
// paper reproduction (TestExperimentDeterminism) byte-identical: the
// shards are lock domains, not worker goroutines, so parallelism only
// arises when multiple callers actually overlap.
//
// Shard-safe API (callable from any goroutine in sharded use): OnFrame,
// OnConnOpen, OnConnClose, InjectForwarded, CountForwardOut,
// CountForwardOutN, Stats, PendingCount, Topics, TopicSubscribers,
// TopicSelectorGroups, ShardOf, SetForwarder, SetInterestFunc,
// FanoutPool. The forwarding seam is shard-safe:
// registration is atomic, and both callbacks fire under the destination
// shard's lock (lock order durableMu → shard.mu), so an observer that
// guards its own state with a lock *below* the shard locks — acquired
// under them, never holding it while calling back into the broker's
// locked paths — composes race-free (package brokernet is the reference
// observer). The only remaining serial-only path is
// Config.LegacyLinearScan routing, which scans the global durable table
// without shard partitioning.
//
// # Subscription index
//
// The publish hot path is indexed rather than scanned. Each topic
// partitions its subscriptions into a fast set — subscriptions whose
// selector provably accepts every message (empty or constant-TRUE
// selectors) — delivered without any evaluation, and selector groups:
// selector-bearing subscriptions grouped by their selector source text,
// so each distinct selector expression's compiled program
// (selector.Program) evaluates once per published message no matter how
// many subscribers share it. Durable subscriptions are additionally indexed by
// topic name, so a publish touches only the durables of its own topic
// instead of every durable in the broker. All index structures are
// ordered slices (subscribe order; groups by first appearance), which
// makes fan-out order — and therefore the discrete-event simulation —
// deterministic. Config.LegacyLinearScan restores the pre-index scan as a
// baseline for A/B benchmarks and equivalence tests.
//
// # Zero-copy fan-out
//
// The broker freezes every message it accepts (message.Freeze) and fans
// the one frozen value out by reference: deliveries, durable backlogs
// and queue backlogs all share it, so a 1000-subscriber fan-out costs
// zero message copies instead of 1000 deep clones. Deliver frames come
// from a pool (wire.GetDeliver) and are returned by the transport that
// consumes them; transports that cannot guarantee consume-exactly-once
// (the simulator, whose unreliable transports retransmit frames) set
// Config.DisableDeliverPool and receive GC-managed frames instead.
// Clone is reserved for paths that genuinely need a private mutable
// copy. Config.CloneDeliveries restores the per-delivery deep copy as a
// baseline for the zero-copy benchmarks.
//
// # Parallel fan-out
//
// On the snapshot read path, a topic publish that matches at least
// Config.ParallelFanoutThreshold subscriptions (default 64) executes
// its delivery stage on a bounded worker pool (package fanout): the
// matched set is grouped into per-connection runs, runs are chunked —
// never split — across workers, and each run is emitted as one pooled
// wire.DeliverBatch carrier instead of N Deliver frames. Per-connection
// delivery order is preserved by construction (one run, one worker, in
// matched order); no cross-connection order is promised, and the
// publish blocks until every chunk completes, so per-publisher ordering
// across consecutive publishes is unchanged. Smaller fan-outs, and all
// fan-outs under Config.SerialFanout or any serial/locked baseline
// mode, take the original inline per-frame loop, which keeps
// single-caller execution — and the simulator's figures — byte-
// identical. See fanplan.go for the exact ordering argument and
// stats.go for the fan-out and egress meters.
package broker

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"gridmon/internal/fanout"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Env abstracts the resources a broker consumes. With a serial binding
// (the sim kernel, or a TCP binding in Config.SerialCore mode) the
// implementation may be single-threaded; a binding that calls the broker
// from multiple goroutines must provide an Env that is safe for
// concurrent use. Send/Alloc/Free/Now are called with broker shard locks
// held and must not call back into the broker synchronously; AllocConn
// and FreeConn are serialized by the broker's session lock.
type Env interface {
	// Now returns the current time in nanoseconds (virtual or wall).
	Now() int64
	// Send emits a frame to a client connection.
	Send(conn ConnID, f wire.Frame)
	// CloseConn asks the binding to drop a client connection.
	CloseConn(conn ConnID)
	// AllocConn reserves the per-connection resources (on the paper's
	// JVM 1.4 testbed, a native thread stack outside the Java heap),
	// failing when the budget is exhausted.
	AllocConn() error
	// FreeConn releases per-connection resources.
	FreeConn()
	// Alloc reserves message-heap bytes, failing when the limit is
	// reached.
	Alloc(n int64) error
	// Free releases message-heap bytes.
	Free(n int64)
}

// Config tunes broker resource behaviour.
type Config struct {
	// ID names the broker (used in CONNECTED and broker-network frames).
	ID string
	// MemPerPendingOverhead is the per-pending-delivery bookkeeping cost
	// added to the message's encoded size.
	MemPerPendingOverhead int64
	// MaxPendingPerSub bounds unacknowledged deliveries per subscription;
	// 0 means unbounded (memory still applies).
	MaxPendingPerSub int
	// MaxQueueBacklog bounds messages stored on a queue with no
	// consumers; 0 means unbounded (memory still applies).
	MaxQueueBacklog int
	// MaxDurableBacklog bounds messages stored for a disconnected
	// durable subscriber; 0 means unbounded (memory still applies).
	MaxDurableBacklog int
	// Shards partitions the destination layer into this many
	// lock-guarded shards keyed by destination-name hash. 0 and 1 both
	// mean a single shard — the serial core, the default for the
	// deterministic simulation. Sharding changes which publishes can
	// proceed concurrently, never what any single operation does: with
	// one calling goroutine the broker behaves identically for any S.
	Shards int
	// SerialCore restores the pre-shard architecture as an A/B
	// baseline (same pattern as LegacyLinearScan/CloneDeliveries): it
	// forces a single shard, and bindings that honour it (internal/jms)
	// funnel every frame through one event-loop goroutine instead of
	// dispatching reader goroutines straight into the shards.
	SerialCore bool
	// DisableDeliverPool makes the broker emit GC-managed Deliver
	// frames instead of pooled ones (wire.GetDeliver). Pooled frames
	// require a transport that consumes each frame exactly once and
	// then releases it; transports that may retransmit or indefinitely
	// hold frames — the simulator's unreliable datagram channels — set
	// this and leave reclamation to the garbage collector.
	DisableDeliverPool bool
	// LegacyLinearScan restores the pre-index publish path: a linear
	// scan over every topic subscription with tree-walking selector
	// evaluation per candidate, and a scan over every durable in the
	// system. It exists as the measured baseline for the fan-out
	// benchmarks and for index-equivalence tests; production
	// configurations leave it false. Serial-only: the durable scan
	// reads the global durable table without shard partitioning.
	LegacyLinearScan bool
	// CloneDeliveries restores the pre-zero-copy fan-out: a private deep
	// copy of the published message per delivery and per stored backlog
	// entry, instead of sharing the one frozen message by reference. It
	// exists as the measured baseline for the zero-copy benchmarks;
	// production configurations leave it false.
	CloneDeliveries bool
	// LockedReadPath restores the locked publish read path as an A/B
	// baseline (same pattern as SerialCore/LegacyLinearScan): topic
	// routing reads the shard's indexes under the shard lock instead of
	// the lock-free copy-on-write snapshot. Behaviour is identical for
	// any single caller — only contention (and the lock meters in
	// Stats) differs. LegacyLinearScan implies it.
	LockedReadPath bool
	// LinearMatch disables the content-based matching index on the
	// snapshot publish path (same A/B-baseline pattern as
	// LockedReadPath): every selector group and buffering durable of
	// the topic is evaluated per message instead of only the candidates
	// the predindex discrimination index emits. Behaviour is identical
	// for any caller — candidates are a superset and are visited in the
	// same first-appearance order — only the MatchIndex* meters in
	// Stats and the per-publish evaluation count differ. The locked and
	// legacy baselines never use the index regardless of this flag.
	LinearMatch bool
	// ParallelFanoutThreshold is the matched-target count at or above
	// which a topic publish hands its fan-out to the parallel engine
	// (fanplan.go): targets are grouped into per-connection runs, runs
	// are chunked across a bounded worker pool (internal/fanout), and
	// each multi-delivery run is emitted as one wire.DeliverBatch
	// instead of per-subscriber Deliver frames. Fan-outs below the
	// threshold execute the serial per-frame loop unchanged, so
	// single-subscriber latency is untouched. 0 means the default (64);
	// the engine is active only on the snapshot read path with a
	// thread-safe Env — SerialFanout, SerialCore, LockedReadPath,
	// LegacyLinearScan and CloneDeliveries all disable it.
	ParallelFanoutThreshold int
	// SerialFanout keeps today's serial per-frame fan-out loop as the
	// measured A/B baseline (same pattern as LinearMatch /
	// LockedReadPath): no worker pool, no egress batching. Behaviour is
	// identical per connection — only the Fanout*/Egress* meters in
	// Stats and the frame envelopes handed to Env.Send differ (batched
	// runs arrive as one *wire.DeliverBatch; the stream bytes a client
	// sees are the same either way). Bindings whose Env is not safe for
	// concurrent use (the simulator) force this on.
	SerialFanout bool
}

// DefaultConfig returns the configuration used in the paper reproduction.
func DefaultConfig(id string) Config {
	return Config{
		ID:                    id,
		MemPerPendingOverhead: 200,
		MaxPendingPerSub:      0,
		MaxQueueBacklog:       100000,
		MaxDurableBacklog:     100000,
	}
}

// ErrConnRefused is returned by OnConnOpen when the per-connection
// resource budget (thread stacks, on the paper's testbed) is exhausted.
var ErrConnRefused = errors.New("broker: connection refused (out of memory)")

// Forwarder lets a broker-network layer observe local publishes and inject
// remote ones; see package brokernet. Shard-safe: OnLocalPublish runs on
// the publishing goroutine, before local delivery. On the default
// lock-free read path no shard lock is held, so the ordering guarantee
// is per-publisher (each publisher's messages reach peers in publish
// order, which is all JMS promises); in the LockedReadPath /
// LegacyLinearScan baselines it runs under the destination shard's
// lock, making peer fan-out for one destination totally ordered with
// that destination's local deliveries. The implementation must not call
// back into the broker's locked paths
// (OnFrame/OnConnOpen/OnConnClose/InjectForwarded) from inside the
// callback; atomic counter methods (CountForwardOut, Stats) are fine.
type Forwarder interface {
	// OnLocalPublish is invoked for every unexpired message accepted
	// from a local client, before local delivery.
	OnLocalPublish(m *message.Message)
}

// Broker is the sans-I/O broker core.
type Broker struct {
	env Env
	cfg Config

	// Session layer: connection table and per-conn subscriptions.
	sessions sessionTable

	// Destination layer: topics/queues/durable indexes partitioned into
	// lock-guarded shards by destination-name hash.
	shards []*shard

	// Durable directory: name → state, spanning shards (a durable can be
	// recreated on a topic that hashes elsewhere). durableMu serializes
	// attach/detach/destroy; the state itself is guarded by the shard of
	// its current topic. Lock order: durableMu before any shard.mu.
	durableMu sync.Mutex
	durables  map[string]*durableState

	// Egress layer: atomic counters (stats.go).
	stats statCounters

	// Forwarding seam (shard-safe): the broker-network hook and the
	// topic-interest observer, registered atomically so bindings may
	// install them while frames are already flowing. Both fire under
	// shard locks; see Forwarder and SetInterestFunc for the contract.
	forwarder  atomic.Pointer[Forwarder]
	onInterest atomic.Pointer[func(topic string, add bool)]

	// Scratch pool for the indexed snapshot publish path (snapshot.go):
	// candidate buffers and probe adapters, recycled across publishes.
	matchScratch sync.Pool

	// Parallel fan-out engine (fanplan.go): worker pool, engage
	// threshold and pooled per-publish plans. fanPool is nil when the
	// engine is disabled (SerialFanout or any serial/locked baseline) —
	// the publish path checks that one pointer.
	fanPool      *fanout.Pool
	fanThreshold int
	fanPlans     sync.Pool

	// Persistence seam (journal.go): mutation observer for durable and
	// queue state, registered atomically like the forwarder. Nil (the
	// default) costs one atomic load per mutation and changes nothing.
	journal atomic.Pointer[Journal]
}

// New returns a broker core using env for I/O and resources.
func New(env Env, cfg Config) *Broker {
	if cfg.ID == "" {
		cfg.ID = "broker"
	}
	n := cfg.Shards
	if cfg.SerialCore || n < 1 {
		n = 1
	}
	b := &Broker{env: env, cfg: cfg, durables: make(map[string]*durableState)}
	b.sessions.init()
	b.shards = make([]*shard, n)
	for i := range b.shards {
		b.shards[i] = newShard()
	}
	// The parallel fan-out engine rides the snapshot read path only: the
	// serial and locked baselines keep the historical loop, and
	// CloneDeliveries is per-frame by definition (each delivery owns a
	// private copy; a batch shares one message).
	if !cfg.SerialFanout && !cfg.SerialCore && !cfg.LockedReadPath &&
		!cfg.LegacyLinearScan && !cfg.CloneDeliveries {
		b.fanPool = fanout.New(0)
		b.fanThreshold = cfg.ParallelFanoutThreshold
		if b.fanThreshold <= 0 {
			b.fanThreshold = defaultParallelFanoutThreshold
		}
	}
	return b
}

// FanoutPool exposes the broker's parallel fan-out pool (nil when the
// engine is disabled), so bindings can share it for their own egress
// fan-outs — brokernet peer forwarding chunks its peer set over the
// same pool.
func (b *Broker) FanoutPool() *fanout.Pool { return b.fanPool }

// ID returns the broker's identifier.
func (b *Broker) ID() string { return b.cfg.ID }

// Config returns the broker's effective configuration (bindings force
// some fields, e.g. the simulator host disables the Deliver-frame pool).
func (b *Broker) Config() Config { return b.cfg }

// SetForwarder installs the broker-network hook. Shard-safe:
// registration is atomic and takes effect for every publish that
// acquires its destination shard lock afterwards; see Forwarder for the
// callback contract.
func (b *Broker) SetForwarder(f Forwarder) {
	if f == nil {
		b.forwarder.Store(nil)
		return
	}
	b.forwarder.Store(&f)
}

// SetInterestFunc installs a callback fired when the broker gains or
// loses its last local subscription on a topic. Shard-safe: registration
// is atomic; the callback runs with the topic's shard lock held and must
// not call back into the broker's locked paths. Interest transitions on
// topics of different shards may fire concurrently, so the observer
// guards its own state (with a lock ordered below the shard locks).
func (b *Broker) SetInterestFunc(fn func(topic string, add bool)) {
	if fn == nil {
		b.onInterest.Store(nil)
		return
	}
	b.onInterest.Store(&fn)
}

// notifyInterest fires the interest observer, if any. Shard lock held.
func (b *Broker) notifyInterest(topic string, add bool) {
	if fn := b.onInterest.Load(); fn != nil {
		(*fn)(topic, add)
	}
}

// TopicSubscribers reports how many local subscriptions a topic has
// (bindings use it to charge selector-matching CPU time). Shard-safe.
func (b *Broker) TopicSubscribers(name string) int {
	sh := b.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.topics[name]; t != nil {
		return t.subCount()
	}
	return 0
}

// TopicSelectorGroups reports how many distinct selector programs a
// publish on the topic evaluates: one per selector group, zero for fast
// (no-selector) subscriptions. Note the simulator binding deliberately
// does NOT use this: it charges selector CPU per subscriber, modelling
// the paper's linear-scan Java broker. This accessor exists for bindings
// (and tests) that want to model or observe the indexed broker itself.
// Shard-safe.
func (b *Broker) TopicSelectorGroups(name string) int {
	sh := b.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.topics[name]; t != nil {
		if b.cfg.LegacyLinearScan {
			return len(t.legacy)
		}
		return len(t.groups)
	}
	return 0
}

// Topics returns the names of topics with at least one local subscriber,
// sorted for deterministic iteration by callers. Shard-safe (each shard
// is snapshotted in turn; concurrent subscribes may land between
// snapshots).
func (b *Broker) Topics() []string {
	var out []string
	for _, sh := range b.shards {
		sh.mu.Lock()
		for name, t := range sh.topics {
			if t.subCount() > 0 {
				out = append(out, name)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// OnFrame processes one protocol frame from a client connection. Unknown
// connections are ignored (the binding may race a close). Shard-safe,
// provided each connection's frames arrive from one goroutine at a time.
func (b *Broker) OnFrame(id ConnID, f wire.Frame) {
	c := b.sessions.lookup(id)
	if c == nil {
		return
	}
	switch v := f.(type) {
	case wire.Connect:
		c.mu.Lock()
		c.clientID = v.ClientID
		c.mu.Unlock()
		b.env.Send(id, wire.Connected{BrokerID: b.cfg.ID})
	case wire.Subscribe:
		b.handleSubscribe(c, v)
	case wire.Unsubscribe:
		c.mu.Lock()
		sub := c.subs[v.SubID]
		delete(c.subs, v.SubID)
		c.mu.Unlock()
		if sub != nil {
			b.dropSubscription(sub, true)
		}
	case wire.Publish:
		b.handlePublish(c, v)
	case wire.Ack:
		b.handleAck(c, v)
	case *wire.Ack:
		// Transports that pool ack frames pass them by pointer.
		b.handleAck(c, *v)
	case wire.Ping:
		b.env.Send(id, wire.Pong{Token: v.Token})
	case wire.Close:
		b.OnConnClose(id)
		b.env.CloseConn(id)
	}
}

func (b *Broker) handlePublish(c *conn, v wire.Publish) {
	// The broker owns the message from here on: freeze it so the one
	// value can be shared by reference across forwarding, every local
	// delivery, and every stored backlog entry. (routeLocal runs the
	// broker-network forwarder under the destination shard's lock, so
	// peer brokers receive the sealed message too.)
	m := v.Msg.Freeze()
	b.stats.published.Add(1)
	b.routeLocal(m, true)
	b.env.Send(c.id, wire.PubAck{Seq: v.Seq})
}

// InjectForwarded delivers a message that arrived from a peer broker to
// local subscribers only (no re-forwarding: the network layer floods
// onward itself, away from the incoming link). Shard-safe.
func (b *Broker) InjectForwarded(m *message.Message) {
	b.stats.forwardedIn.Add(1)
	b.routeLocal(m.Freeze(), false)
}

// CountForwardOut records that the network layer forwarded a message to a
// peer (for stats parity between routing modes). Shard-safe.
func (b *Broker) CountForwardOut() { b.stats.forwardedOut.Add(1) }

// CountForwardOutN is CountForwardOut for a whole peer fan-out counted
// at once (the network layer's parallel forward path). Shard-safe.
func (b *Broker) CountForwardOutN(n int) { b.stats.forwardedOut.Add(uint64(n)) }
