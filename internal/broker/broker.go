// Package broker implements the NaradaBrokering-style message broker at
// the heart of the reproduction: topic and queue destinations, per-
// subscription JMS selectors, AUTO/CLIENT acknowledgement bookkeeping,
// durable subscriptions, message expiration, and per-connection /
// per-pending-message memory accounting.
//
// The broker core is written sans-I/O: it consumes protocol frames via
// OnFrame and emits frames through an Env interface. The same core runs
// under the discrete-event simulator (package simbroker), where Env
// charges virtual CPU time and JVM heap, and behind a real TCP listener
// (cmd/naradad), where Env writes to sockets. Memory accounting is what
// produces the paper's scalability cliff: each connection costs a thread
// stack, so a 1 GB heap refuses new connections near 4000 of them, exactly
// as the paper's broker "ran out of memory to create new threads to serve
// more incoming connections".
//
// # Subscription index
//
// The publish hot path is indexed rather than scanned. Each topic
// partitions its subscriptions into a fast set — subscriptions whose
// selector provably accepts every message (empty or constant-TRUE
// selectors) — delivered without any evaluation, and selector groups:
// selector-bearing subscriptions grouped by their selector source text,
// so each distinct selector expression's compiled program
// (selector.Program) evaluates once per published message no matter how
// many subscribers share it. Durable subscriptions are additionally indexed by
// topic name, so a publish touches only the durables of its own topic
// instead of every durable in the broker. All index structures are
// ordered slices (subscribe order; groups by first appearance), which
// makes fan-out order — and therefore the discrete-event simulation —
// deterministic. Config.LegacyLinearScan restores the pre-index scan as a
// baseline for A/B benchmarks and equivalence tests.
//
// # Zero-copy fan-out
//
// The broker freezes every message it accepts (message.Freeze) and fans
// the one frozen value out by reference: deliveries, durable backlogs
// and queue backlogs all share it, so a 1000-subscriber fan-out costs
// zero message copies instead of 1000 deep clones. Deliver frames come
// from a pool (wire.GetDeliver) and are returned by the transport that
// consumes them. Clone is reserved for paths that genuinely need a
// private mutable copy. Config.CloneDeliveries restores the per-delivery
// deep copy as a baseline for the zero-copy benchmarks.
package broker

import (
	"errors"
	"fmt"
	"sort"

	"gridmon/internal/message"
	"gridmon/internal/selector"
	"gridmon/internal/wire"
)

// ConnID identifies a client connection within one broker.
type ConnID int64

// Env abstracts the resources a broker consumes. Implementations must be
// single-threaded with respect to the broker (the sim kernel and the TCP
// binding's event loop both guarantee this).
type Env interface {
	// Now returns the current time in nanoseconds (virtual or wall).
	Now() int64
	// Send emits a frame to a client connection.
	Send(conn ConnID, f wire.Frame)
	// CloseConn asks the binding to drop a client connection.
	CloseConn(conn ConnID)
	// AllocConn reserves the per-connection resources (on the paper's
	// JVM 1.4 testbed, a native thread stack outside the Java heap),
	// failing when the budget is exhausted.
	AllocConn() error
	// FreeConn releases per-connection resources.
	FreeConn()
	// Alloc reserves message-heap bytes, failing when the limit is
	// reached.
	Alloc(n int64) error
	// Free releases message-heap bytes.
	Free(n int64)
}

// Config tunes broker resource behaviour.
type Config struct {
	// ID names the broker (used in CONNECTED and broker-network frames).
	ID string
	// MemPerPendingOverhead is the per-pending-delivery bookkeeping cost
	// added to the message's encoded size.
	MemPerPendingOverhead int64
	// MaxPendingPerSub bounds unacknowledged deliveries per subscription;
	// 0 means unbounded (memory still applies).
	MaxPendingPerSub int
	// MaxQueueBacklog bounds messages stored on a queue with no
	// consumers; 0 means unbounded (memory still applies).
	MaxQueueBacklog int
	// MaxDurableBacklog bounds messages stored for a disconnected
	// durable subscriber; 0 means unbounded (memory still applies).
	MaxDurableBacklog int
	// LegacyLinearScan restores the pre-index publish path: a linear
	// scan over every topic subscription with tree-walking selector
	// evaluation per candidate, and a scan over every durable in the
	// system. It exists as the measured baseline for the fan-out
	// benchmarks and for index-equivalence tests; production
	// configurations leave it false.
	LegacyLinearScan bool
	// CloneDeliveries restores the pre-zero-copy fan-out: a private deep
	// copy of the published message per delivery and per stored backlog
	// entry, instead of sharing the one frozen message by reference. It
	// exists as the measured baseline for the zero-copy benchmarks;
	// production configurations leave it false.
	CloneDeliveries bool
}

// DefaultConfig returns the configuration used in the paper reproduction.
func DefaultConfig(id string) Config {
	return Config{
		ID:                    id,
		MemPerPendingOverhead: 200,
		MaxPendingPerSub:      0,
		MaxQueueBacklog:       100000,
		MaxDurableBacklog:     100000,
	}
}

// ErrConnRefused is returned by OnConnOpen when the per-connection
// resource budget (thread stacks, on the paper's testbed) is exhausted.
var ErrConnRefused = errors.New("broker: connection refused (out of memory)")

// Stats counts broker activity.
type Stats struct {
	Connections      int
	PeakConnections  int
	Published        uint64
	Delivered        uint64
	Acked            uint64
	SelectorRejected uint64 // deliveries suppressed by selectors
	Expired          uint64
	DroppedOOM       uint64 // deliveries dropped because memory ran out
	DroppedBacklog   uint64 // stored messages dropped at backlog caps
	ForwardedOut     uint64 // messages forwarded to peer brokers
	ForwardedIn      uint64 // messages received from peer brokers
	RefusedConns     uint64
}

type pendingDelivery struct {
	tag  int64
	cost int64 // heap bytes charged
}

type subscription struct {
	conn        *conn
	id          int64
	dest        message.Destination
	sel         *selector.Selector
	ackMode     message.AckMode
	durableName string
	nextTag     int64
	pending     map[int64]pendingDelivery
}

type conn struct {
	id       ConnID
	clientID string
	subs     map[int64]*subscription
}

type storedMsg struct {
	msg  *message.Message
	cost int64
}

// selGroup collects the topic subscriptions sharing one selector source
// text. The group's compiled program is evaluated once per published
// message and its verdict applied to every member. Grouping is textual:
// semantically equivalent but differently written selectors ("id<10" vs
// "id < 10") land in separate groups and are evaluated separately.
type selGroup struct {
	key  string // verbatim selector source
	prog *selector.Program
	subs []*subscription // subscribe order
}

// topicState indexes a topic's subscriptions for publish fan-out. In the
// default indexed mode, fast holds subscriptions delivered without
// selector evaluation and groups holds the selector-bearing ones,
// deduplicated by selector source. In legacy mode every subscription
// lives in the legacy set — an unordered map, exactly the structure the
// pre-index broker scanned.
type topicState struct {
	name   string
	fast   []*subscription      // always-true selectors, subscribe order
	groups []*selGroup          // first-appearance order
	byKey  map[string]*selGroup // selector source -> group
	legacy map[*subscription]struct{}
}

func (t *topicState) subCount() int {
	n := len(t.fast) + len(t.legacy)
	for _, g := range t.groups {
		n += len(g.subs)
	}
	return n
}

type queueState struct {
	name    string
	subs    []*subscription // round-robin order
	rrNext  int
	backlog []storedMsg
}

type durableState struct {
	name    string
	topic   string
	sel     *selector.Selector
	active  *subscription // nil while disconnected
	backlog []storedMsg
}

// Forwarder lets a broker-network layer observe local publishes and inject
// remote ones; see package brokernet.
type Forwarder interface {
	// OnLocalPublish is invoked for every message accepted from a local
	// client, before local delivery.
	OnLocalPublish(m *message.Message)
}

// Broker is the sans-I/O broker core.
type Broker struct {
	env   Env
	cfg   Config
	conns map[ConnID]*conn

	topics   map[string]*topicState
	queues   map[string]*queueState
	durables map[string]*durableState
	// durablesByTopic indexes durables by their topic (in creation
	// order) so publish touches only the durables of the published
	// topic. Unused in legacy mode, which scans the durables map.
	durablesByTopic map[string][]*durableState

	forwarder Forwarder

	// TopicInterest observers (brokernet uses these to propagate
	// subscription info for TREE routing).
	onInterest func(topic string, add bool)

	stats Stats
}

// New returns a broker core using env for I/O and resources.
func New(env Env, cfg Config) *Broker {
	if cfg.ID == "" {
		cfg.ID = "broker"
	}
	return &Broker{
		env:             env,
		cfg:             cfg,
		conns:           make(map[ConnID]*conn),
		topics:          make(map[string]*topicState),
		queues:          make(map[string]*queueState),
		durables:        make(map[string]*durableState),
		durablesByTopic: make(map[string][]*durableState),
	}
}

// ID returns the broker's identifier.
func (b *Broker) ID() string { return b.cfg.ID }

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	s := b.stats
	s.Connections = len(b.conns)
	return s
}

// SetForwarder installs the broker-network hook.
func (b *Broker) SetForwarder(f Forwarder) { b.forwarder = f }

// SetInterestFunc installs a callback fired when the broker gains or
// loses its last local subscription on a topic.
func (b *Broker) SetInterestFunc(fn func(topic string, add bool)) { b.onInterest = fn }

// TopicSubscribers reports how many local subscriptions a topic has
// (bindings use it to charge selector-matching CPU time).
func (b *Broker) TopicSubscribers(name string) int {
	if t := b.topics[name]; t != nil {
		return t.subCount()
	}
	return 0
}

// TopicSelectorGroups reports how many distinct selector programs a
// publish on the topic evaluates: one per selector group, zero for fast
// (no-selector) subscriptions. Note the simulator binding deliberately
// does NOT use this: it charges selector CPU per subscriber, modelling
// the paper's linear-scan Java broker. This accessor exists for bindings
// (and tests) that want to model or observe the indexed broker itself.
func (b *Broker) TopicSelectorGroups(name string) int {
	if t := b.topics[name]; t != nil {
		if b.cfg.LegacyLinearScan {
			return len(t.legacy)
		}
		return len(t.groups)
	}
	return 0
}

// Topics returns the names of topics with at least one local subscriber,
// sorted for deterministic iteration by callers.
func (b *Broker) Topics() []string {
	var out []string
	for name, t := range b.topics {
		if t.subCount() > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// OnConnOpen admits a new client connection, charging its memory cost.
// The binding must call this before delivering any frames for the
// connection and must close the transport if an error is returned.
func (b *Broker) OnConnOpen(id ConnID) error {
	if _, dup := b.conns[id]; dup {
		panic(fmt.Sprintf("broker: duplicate conn id %d", id))
	}
	if err := b.env.AllocConn(); err != nil {
		b.stats.RefusedConns++
		return fmt.Errorf("%w: %v", ErrConnRefused, err)
	}
	b.conns[id] = &conn{id: id, subs: make(map[int64]*subscription)}
	if n := len(b.conns); n > b.stats.PeakConnections {
		b.stats.PeakConnections = n
	}
	return nil
}

// OnConnClose releases a connection and all its subscriptions. Durable
// subscriptions revert to the disconnected state and begin buffering.
func (b *Broker) OnConnClose(id ConnID) {
	c, ok := b.conns[id]
	if !ok {
		return
	}
	for _, sub := range c.subs {
		b.dropSubscription(sub, false)
	}
	delete(b.conns, id)
	b.env.FreeConn()
}

// OnFrame processes one protocol frame from a client connection. Unknown
// connections are ignored (the binding may race a close).
func (b *Broker) OnFrame(id ConnID, f wire.Frame) {
	c, ok := b.conns[id]
	if !ok {
		return
	}
	switch v := f.(type) {
	case wire.Connect:
		c.clientID = v.ClientID
		b.env.Send(id, wire.Connected{BrokerID: b.cfg.ID})
	case wire.Subscribe:
		b.handleSubscribe(c, v)
	case wire.Unsubscribe:
		if sub, ok := c.subs[v.SubID]; ok {
			b.dropSubscription(sub, true)
		}
	case wire.Publish:
		b.handlePublish(c, v)
	case wire.Ack:
		b.handleAck(c, v)
	case *wire.Ack:
		// Transports that pool ack frames pass them by pointer.
		b.handleAck(c, *v)
	case wire.Ping:
		b.env.Send(id, wire.Pong{Token: v.Token})
	case wire.Close:
		b.OnConnClose(id)
		b.env.CloseConn(id)
	}
}

func (b *Broker) handleSubscribe(c *conn, v wire.Subscribe) {
	if _, dup := c.subs[v.SubID]; dup {
		// Protocol violation; drop the connection.
		b.OnConnClose(c.id)
		b.env.CloseConn(c.id)
		return
	}
	sel, err := selector.Parse(v.Selector)
	if err != nil {
		// JMS raises InvalidSelectorException at subscribe time; the
		// protocol surfaces it by closing the subscription attempt. We
		// signal with SubOK carrying a negative id.
		b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
		return
	}
	ackMode := v.AckMode
	if ackMode == 0 {
		ackMode = message.AutoAck
	}
	sub := &subscription{
		conn:        c,
		id:          v.SubID,
		dest:        v.Dest,
		sel:         sel,
		ackMode:     ackMode,
		durableName: v.DurableName,
		pending:     make(map[int64]pendingDelivery),
	}
	switch v.Dest.Kind {
	case message.TopicKind:
		if v.Durable && v.DurableName != "" {
			if !b.attachDurable(sub) {
				b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
				return
			}
		}
		t := b.topics[v.Dest.Name]
		if t == nil {
			t = &topicState{name: v.Dest.Name, byKey: make(map[string]*selGroup)}
			b.topics[v.Dest.Name] = t
		}
		wasEmpty := t.subCount() == 0
		b.addTopicSub(t, sub)
		if wasEmpty && b.onInterest != nil {
			b.onInterest(t.name, true)
		}
	case message.QueueKind:
		q := b.queues[v.Dest.Name]
		if q == nil {
			q = &queueState{name: v.Dest.Name}
			b.queues[v.Dest.Name] = q
		}
		q.subs = append(q.subs, sub)
	default:
		b.env.Send(c.id, wire.SubOK{SubID: -v.SubID})
		return
	}
	c.subs[v.SubID] = sub
	b.env.Send(c.id, wire.SubOK{SubID: v.SubID})
	// Deliver any backlog the subscription is entitled to.
	if v.Dest.Kind == message.QueueKind {
		b.drainQueue(b.queues[v.Dest.Name])
	} else if v.Durable && v.DurableName != "" {
		b.drainDurable(b.durables[v.DurableName], sub)
	}
}

// addTopicSub places a subscription into the topic's index: the fast set
// when its selector provably matches everything, otherwise the selector
// group for its selector source (created on first use). Legacy mode
// appends to the flat scan list instead.
func (b *Broker) addTopicSub(t *topicState, sub *subscription) {
	if b.cfg.LegacyLinearScan {
		if t.legacy == nil {
			t.legacy = make(map[*subscription]struct{})
		}
		t.legacy[sub] = struct{}{}
		return
	}
	if sub.sel.AlwaysTrue() {
		t.fast = append(t.fast, sub)
		return
	}
	key := sub.sel.String()
	g := t.byKey[key]
	if g == nil {
		g = &selGroup{key: key, prog: sub.sel.Compiled()}
		t.byKey[key] = g
		t.groups = append(t.groups, g)
	}
	g.subs = append(g.subs, sub)
}

// removeTopicSub removes a subscription from the topic's index,
// preserving the order of the remaining entries. Emptied selector groups
// are dropped.
func (b *Broker) removeTopicSub(t *topicState, sub *subscription) {
	if b.cfg.LegacyLinearScan {
		delete(t.legacy, sub)
		return
	}
	if sub.sel.AlwaysTrue() {
		t.fast = removeSub(t.fast, sub)
		return
	}
	key := sub.sel.String()
	g := t.byKey[key]
	if g == nil {
		return
	}
	g.subs = removeSub(g.subs, sub)
	if len(g.subs) == 0 {
		delete(t.byKey, key)
		for i, og := range t.groups {
			if og == g {
				copy(t.groups[i:], t.groups[i+1:])
				t.groups[len(t.groups)-1] = nil // don't pin the dead group
				t.groups = t.groups[:len(t.groups)-1]
				break
			}
		}
	}
}

// removeSub deletes sub from the slice, preserving order and niling the
// vacated tail slot so the backing array does not pin the dead
// subscription (and the pending-delivery map hanging off it).
func removeSub(subs []*subscription, sub *subscription) []*subscription {
	for i, s := range subs {
		if s == sub {
			copy(subs[i:], subs[i+1:])
			subs[len(subs)-1] = nil
			return subs[:len(subs)-1]
		}
	}
	return subs
}

// attachDurable binds a subscription to its durable state, creating it on
// first use. It fails when the durable name is already active on another
// subscription (JMS allows one active consumer per durable subscription).
func (b *Broker) attachDurable(sub *subscription) bool {
	d := b.durables[sub.durableName]
	if d == nil {
		d = &durableState{name: sub.durableName, topic: sub.dest.Name, sel: sub.sel}
		b.durables[sub.durableName] = d
		b.durablesByTopic[d.topic] = append(b.durablesByTopic[d.topic], d)
	}
	if d.active != nil {
		return false
	}
	// JMS: changing topic or selector on a durable name recreates it.
	if d.topic != sub.dest.Name || d.sel.String() != sub.sel.String() {
		for _, sm := range d.backlog {
			b.env.Free(sm.cost)
		}
		d.backlog = nil
		if d.topic != sub.dest.Name {
			b.unindexDurable(d)
			d.topic = sub.dest.Name
			b.durablesByTopic[d.topic] = append(b.durablesByTopic[d.topic], d)
		}
		d.sel = sub.sel
	}
	d.active = sub
	return true
}

// unindexDurable removes a durable from the by-topic index, preserving
// the order of the remaining entries.
func (b *Broker) unindexDurable(d *durableState) {
	ds := b.durablesByTopic[d.topic]
	for i, od := range ds {
		if od == d {
			copy(ds[i:], ds[i+1:])
			ds[len(ds)-1] = nil // don't pin the dead durable's backlog
			ds = ds[:len(ds)-1]
			break
		}
	}
	if len(ds) == 0 {
		delete(b.durablesByTopic, d.topic)
	} else {
		b.durablesByTopic[d.topic] = ds
	}
}

func (b *Broker) drainDurable(d *durableState, sub *subscription) {
	if d == nil {
		return
	}
	backlog := d.backlog
	d.backlog = nil
	for _, sm := range backlog {
		b.env.Free(sm.cost)
		b.deliverTo(sub, sm.msg)
	}
}

// dropSubscription removes a subscription from its destination.
// unsubscribe distinguishes a client Unsubscribe (which also destroys
// durable state) from a connection close (which keeps it buffering).
func (b *Broker) dropSubscription(sub *subscription, unsubscribe bool) {
	for _, pd := range sub.pending {
		b.env.Free(pd.cost)
	}
	sub.pending = make(map[int64]pendingDelivery)
	delete(sub.conn.subs, sub.id)
	switch sub.dest.Kind {
	case message.TopicKind:
		if t := b.topics[sub.dest.Name]; t != nil {
			b.removeTopicSub(t, sub)
			if t.subCount() == 0 {
				if b.onInterest != nil {
					b.onInterest(t.name, false)
				}
				delete(b.topics, sub.dest.Name)
			}
		}
		if sub.durableName != "" {
			if d := b.durables[sub.durableName]; d != nil && d.active == sub {
				d.active = nil
				if unsubscribe {
					for _, sm := range d.backlog {
						b.env.Free(sm.cost)
					}
					delete(b.durables, sub.durableName)
					b.unindexDurable(d)
				}
			}
		}
	case message.QueueKind:
		if q := b.queues[sub.dest.Name]; q != nil {
			for i, s := range q.subs {
				if s == sub {
					copy(q.subs[i:], q.subs[i+1:])
					q.subs[len(q.subs)-1] = nil // don't pin the dead subscription
					q.subs = q.subs[:len(q.subs)-1]
					if q.rrNext > i {
						q.rrNext--
					}
					break
				}
			}
			if len(q.subs) == 0 && len(q.backlog) == 0 {
				delete(b.queues, sub.dest.Name)
			}
		}
	}
}

func (b *Broker) handlePublish(c *conn, v wire.Publish) {
	// The broker owns the message from here on: freeze it so the one
	// value can be shared by reference across forwarding, every local
	// delivery, and every stored backlog entry. (Freezing before the
	// forwarder runs means peer brokers receive the sealed message too.)
	m := v.Msg.Freeze()
	b.stats.Published++
	if b.forwarder != nil {
		b.forwarder.OnLocalPublish(m)
	}
	b.routeLocal(m)
	b.env.Send(c.id, wire.PubAck{Seq: v.Seq})
}

// InjectForwarded delivers a message that arrived from a peer broker to
// local subscribers only (no re-forwarding).
func (b *Broker) InjectForwarded(m *message.Message) {
	b.stats.ForwardedIn++
	b.routeLocal(m.Freeze())
}

// CountForwardOut records that the network layer forwarded a message to a
// peer (for stats parity between routing modes).
func (b *Broker) CountForwardOut() { b.stats.ForwardedOut++ }

func (b *Broker) routeLocal(m *message.Message) {
	if m.Expiration > 0 && b.env.Now() > m.Expiration {
		b.stats.Expired++
		return
	}
	switch m.Dest.Kind {
	case message.TopicKind:
		if b.cfg.LegacyLinearScan {
			b.routeTopicLegacy(m)
			return
		}
		t := b.topics[m.Dest.Name]
		durables := b.durablesByTopic[m.Dest.Name]
		if t == nil && len(durables) == 0 {
			return
		}
		// The message's encoded size (hence its delivery memory cost) is
		// identical for every subscriber: compute it once per publish.
		cost := int64(m.EncodedSize()) + b.cfg.MemPerPendingOverhead
		if t != nil {
			// Fast set: selectors that provably accept everything are
			// delivered without evaluation.
			for _, sub := range t.fast {
				b.deliverCost(sub, m, cost)
			}
			// Selector groups: one compiled evaluation per distinct
			// selector, applied to every subscriber sharing it.
			for _, g := range t.groups {
				if g.prog.Matches(m) {
					for _, sub := range g.subs {
						b.deliverCost(sub, m, cost)
					}
				} else {
					b.stats.SelectorRejected += uint64(len(g.subs))
				}
			}
		}
		// Durable subscribers currently offline buffer the message; only
		// this topic's durables are touched.
		for _, d := range durables {
			if d.active == nil && d.sel.Matches(m) {
				b.storeDurable(d, m, cost)
			}
		}
	case message.QueueKind:
		q := b.queues[m.Dest.Name]
		if q == nil {
			q = &queueState{name: m.Dest.Name}
			b.queues[m.Dest.Name] = q
		}
		b.enqueue(q, m)
		b.drainQueue(q)
	}
}

// routeTopicLegacy is the pre-index publish path, kept as the measured
// baseline: every topic subscription is visited with a tree-walking
// selector evaluation per candidate, and every durable in the broker is
// scanned regardless of its topic.
func (b *Broker) routeTopicLegacy(m *message.Message) {
	if t := b.topics[m.Dest.Name]; t != nil {
		for sub := range t.legacy {
			if sub.sel.EvalInterpreted(m) == selector.TriTrue {
				b.deliverTo(sub, m)
			} else {
				b.stats.SelectorRejected++
			}
		}
	}
	for _, d := range b.durables {
		if d.active == nil && d.topic == m.Dest.Name && d.sel.EvalInterpreted(m) == selector.TriTrue {
			b.storeDurable(d, m, int64(m.EncodedSize())+b.cfg.MemPerPendingOverhead)
		}
	}
}

// shareOrClone returns the message to hand to a delivery or backlog
// entry: the frozen message itself on the default zero-copy path, or a
// private deep copy when Config.CloneDeliveries restores the old
// behaviour as a benchmark baseline.
func (b *Broker) shareOrClone(m *message.Message) *message.Message {
	if b.cfg.CloneDeliveries {
		return m.Clone()
	}
	return m
}

func (b *Broker) storeDurable(d *durableState, m *message.Message, cost int64) {
	if b.cfg.MaxDurableBacklog > 0 && len(d.backlog) >= b.cfg.MaxDurableBacklog {
		b.stats.DroppedBacklog++
		return
	}
	if err := b.env.Alloc(cost); err != nil {
		b.stats.DroppedOOM++
		return
	}
	d.backlog = append(d.backlog, storedMsg{msg: b.shareOrClone(m), cost: cost})
}

func (b *Broker) enqueue(q *queueState, m *message.Message) {
	if b.cfg.MaxQueueBacklog > 0 && len(q.backlog) >= b.cfg.MaxQueueBacklog {
		b.stats.DroppedBacklog++
		return
	}
	cost := int64(m.EncodedSize()) + b.cfg.MemPerPendingOverhead
	if err := b.env.Alloc(cost); err != nil {
		b.stats.DroppedOOM++
		return
	}
	q.backlog = append(q.backlog, storedMsg{msg: b.shareOrClone(m), cost: cost})
}

// drainQueue hands queued messages to consumers round-robin, honouring
// selectors: a message goes to the next consumer whose selector accepts
// it; messages no consumer accepts stay queued. The backlog is filtered
// in place — undelivered messages shift down within the same backing
// array — so a drain allocates nothing, and when no consumer matches
// anything the backlog is left untouched.
func (b *Broker) drainQueue(q *queueState) {
	if len(q.subs) == 0 || len(q.backlog) == 0 {
		return
	}
	kept := 0
	for _, sm := range q.backlog {
		delivered := false
		for i := 0; i < len(q.subs); i++ {
			sub := q.subs[(q.rrNext+i)%len(q.subs)]
			if sub.sel.Matches(sm.msg) {
				q.rrNext = (q.rrNext + i + 1) % len(q.subs)
				b.env.Free(sm.cost)
				b.deliverTo(sub, sm.msg)
				delivered = true
				break
			}
		}
		if !delivered {
			q.backlog[kept] = sm
			kept++
		}
	}
	if kept == len(q.backlog) {
		return // nothing delivered; backlog unchanged
	}
	// Zero the vacated tail so delivered messages don't stay pinned by
	// the backing array.
	for i := kept; i < len(q.backlog); i++ {
		q.backlog[i] = storedMsg{}
	}
	q.backlog = q.backlog[:kept]
}

// deliverTo sends a message to one subscription, tracking it as pending
// until acknowledged.
func (b *Broker) deliverTo(sub *subscription, m *message.Message) {
	b.deliverCost(sub, m, int64(m.EncodedSize())+b.cfg.MemPerPendingOverhead)
}

// deliverCost is deliverTo with the delivery's memory cost precomputed,
// so a topic fan-out prices the message once instead of per subscriber.
// The frozen message is shared by reference across all deliveries; the
// Deliver frame itself comes from a pool, returned by whichever
// transport consumes it.
func (b *Broker) deliverCost(sub *subscription, m *message.Message, cost int64) {
	if b.cfg.MaxPendingPerSub > 0 && len(sub.pending) >= b.cfg.MaxPendingPerSub {
		b.stats.DroppedBacklog++
		return
	}
	if err := b.env.Alloc(cost); err != nil {
		b.stats.DroppedOOM++
		return
	}
	sub.nextTag++
	tag := sub.nextTag
	sub.pending[tag] = pendingDelivery{tag: tag, cost: cost}
	b.stats.Delivered++
	d := wire.GetDeliver()
	d.SubID, d.Tag, d.Msg = sub.id, tag, b.shareOrClone(m)
	b.env.Send(sub.conn.id, d)
}

func (b *Broker) handleAck(c *conn, v wire.Ack) {
	sub, ok := c.subs[v.SubID]
	if !ok {
		return
	}
	for _, tag := range v.Tags {
		if pd, ok := sub.pending[tag]; ok {
			b.env.Free(pd.cost)
			delete(sub.pending, tag)
			b.stats.Acked++
		}
	}
}

// PendingCount reports unacknowledged deliveries across all subscriptions
// (for tests and monitoring).
func (b *Broker) PendingCount() int {
	n := 0
	for _, c := range b.conns {
		for _, sub := range c.subs {
			n += len(sub.pending)
		}
	}
	return n
}
