// Destination layer, part 6: the parallel fan-out engine. On the
// snapshot read path the publisher evaluates matching exactly as the
// serial loop does (selectors once per group, durables inline), but
// matched subscriptions are collected into a pooled per-publish plan
// instead of being delivered one Deliver frame at a time. Below
// Config.ParallelFanoutThreshold the plan replays the serial per-frame
// loop in the exact matched order — byte-identical behaviour, so
// single-subscriber latency never pays for the engine. At or above the
// threshold the plan is grouped into per-connection *runs* (preserving
// matched order within each connection), the runs are chunked across a
// bounded worker pool (internal/fanout), and each multi-delivery run is
// emitted as one wire.DeliverBatch splicing the frozen message's cached
// encoding per entry at the transport.
//
// Ordering contract: per-connection delivery order is preserved by
// construction — a connection's subscriptions live in exactly one run,
// runs keep matched order, and one worker owns a whole run. What the
// engine relaxes is cross-connection interleaving and the emission
// point: deliverCost emits inside the sub.mu hold (tag-ordered per
// subscription even across racing publishers), while a batched run
// allocates tags under each sub.mu in turn and emits after release. Tag
// *allocation* order is still serialized per subscription; with
// concurrent publishers to the same subscription two batches may reach
// the transport in the opposite order of their tags — within one
// publisher, Run blocks before PubAck, so per-publisher order (all JMS
// promises) holds. This is the same relaxation the Forwarder contract
// documents for the lock-free read path.
//
// The engine requires an Env that is safe for concurrent use, because
// chunk workers call Env.Alloc/Send. Bindings with single-threaded Envs
// (the simulator) force Config.SerialFanout.

package broker

import (
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// defaultParallelFanoutThreshold is the matched-target count that
// engages run grouping and the worker pool when
// Config.ParallelFanoutThreshold is zero. Below it, plan execution is
// the serial loop verbatim.
const defaultParallelFanoutThreshold = 64

// fanRun is one connection's slice of a fan-out: every matched
// subscription of that connection, in matched order.
type fanRun struct {
	connID ConnID
	subs   []*subscription
}

// fanPlan is the pooled per-publish collection scratch: the flat
// matched-target list (serial order), and the run/grouping storage
// reused across publishes. Only the publishing goroutine touches a
// plan; workers see only the immutable runs slice during pool.Run.
type fanPlan struct {
	flat   []*subscription
	runs   []fanRun
	byConn map[ConnID]int
}

// getFanPlan returns an empty plan from the broker's pool.
func (b *Broker) getFanPlan() *fanPlan {
	p, _ := b.fanPlans.Get().(*fanPlan)
	if p == nil {
		p = &fanPlan{byConn: make(map[ConnID]int)}
	}
	return p
}

// putFanPlan clears subscription pointers (a pooled plan must not pin
// dropped subscriptions) and recycles the plan.
func (b *Broker) putFanPlan(p *fanPlan) {
	for i := range p.flat {
		p.flat[i] = nil
	}
	p.flat = p.flat[:0]
	for i := range p.runs {
		r := &p.runs[i]
		for j := range r.subs {
			r.subs[j] = nil
		}
		r.subs = r.subs[:0]
	}
	p.runs = p.runs[:0]
	clear(p.byConn)
	b.fanPlans.Put(p)
}

// add records one matched subscription, in matched (serial) order.
func (p *fanPlan) add(sub *subscription) { p.flat = append(p.flat, sub) }

// group partitions the flat matched list into per-connection runs,
// preserving matched order within each connection. Run order is
// first-appearance order of connections.
func (p *fanPlan) group() {
	for _, sub := range p.flat {
		id := sub.conn.id
		ri, ok := p.byConn[id]
		if !ok {
			ri = len(p.runs)
			p.byConn[id] = ri
			if ri < cap(p.runs) {
				p.runs = p.runs[:ri+1]
				p.runs[ri].connID = id
			} else {
				p.runs = append(p.runs, fanRun{connID: id})
			}
		}
		p.runs[ri].subs = append(p.runs[ri].subs, sub)
	}
}

// execFanPlan delivers a collected plan. Below the threshold it IS the
// serial loop (per-frame deliverCost in matched order); at or above it,
// runs execute across the fan-out pool with batched emission.
func (b *Broker) execFanPlan(p *fanPlan, m *message.Message, cost int64) {
	if len(p.flat) == 0 {
		return
	}
	if len(p.flat) < b.fanThreshold {
		b.stats.fanoutInlineRuns.Add(1)
		for _, sub := range p.flat {
			b.deliverCost(sub, m, cost)
		}
		return
	}
	p.group()
	runs := p.runs
	chunks := len(runs)
	if w := b.fanPool.Workers(); chunks > w {
		chunks = w
	}
	b.stats.fanoutTasks.Add(1)
	b.stats.fanoutChunks.Add(uint64(chunks))
	n := len(runs)
	b.fanPool.Run(chunks, func(ci int) {
		// Contiguous whole-run spans: a connection never splits across
		// chunks, so per-connection order survives parallel execution.
		for i := ci * n / chunks; i < (ci+1)*n/chunks; i++ {
			b.deliverRun(&runs[i], m, cost)
		}
	})
}

// deliverRun emits one connection's run. A single-delivery run takes
// the exact per-frame path; longer runs allocate tags per subscription
// under each leaf lock in turn, then emit one DeliverBatch for the
// whole connection (see the package comment on the emission-ordering
// relaxation). Skipped subscriptions (detached, backlog cap, OOM)
// account exactly as the serial loop does; a run whose every delivery
// was skipped releases its batch here — otherwise the transport that
// consumes the batch releases it, the same exactly-once ownership rule
// pooled Deliver frames follow.
func (b *Broker) deliverRun(r *fanRun, m *message.Message, cost int64) {
	if len(r.subs) == 1 {
		b.deliverCost(r.subs[0], m, cost)
		return
	}
	batch := b.getDeliverBatch()
	batch.Msg = m
	for _, sub := range r.subs {
		sub.mu.Lock()
		if sub.detached {
			sub.mu.Unlock()
			continue
		}
		if b.cfg.MaxPendingPerSub > 0 && len(sub.pending) >= b.cfg.MaxPendingPerSub {
			sub.mu.Unlock()
			b.stats.droppedBacklog.Add(1)
			continue
		}
		if err := b.env.Alloc(cost); err != nil {
			sub.mu.Unlock()
			b.stats.droppedOOM.Add(1)
			continue
		}
		sub.nextTag++
		tag := sub.nextTag
		sub.pending[tag] = pendingDelivery{tag: tag, cost: cost}
		sub.mu.Unlock()
		b.stats.delivered.Add(1)
		b.stats.pending.Add(1)
		batch.Entries = append(batch.Entries, wire.DeliverEntry{SubID: sub.id, Tag: tag})
	}
	if len(batch.Entries) == 0 {
		b.putDeliverBatch(batch)
		return
	}
	b.stats.egressFlushes.Add(1)
	b.stats.egressFrames.Add(uint64(len(batch.Entries)))
	b.env.Send(r.connID, batch)
}

// getDeliverBatch / putDeliverBatch honour Config.DisableDeliverPool
// the same way getDeliver does: pooled envelopes only for transports
// that consume exactly once.
func (b *Broker) getDeliverBatch() *wire.DeliverBatch {
	if b.cfg.DisableDeliverPool {
		return new(wire.DeliverBatch)
	}
	return wire.GetDeliverBatch()
}

func (b *Broker) putDeliverBatch(batch *wire.DeliverBatch) {
	if b.cfg.DisableDeliverPool {
		return
	}
	wire.PutDeliverBatch(batch)
}
