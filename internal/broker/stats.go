// Egress layer: Deliver-frame emission and broker counters. Counters
// are atomics, so Stats() and PendingCount() are safe to call from any
// goroutine while shards run publishes in parallel; deliverCost is the
// single funnel every delivery passes through, called with the owning
// shard's lock held.

package broker

import (
	"sync/atomic"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Stats counts broker activity.
type Stats struct {
	Connections      int
	PeakConnections  int
	Published        uint64
	Delivered        uint64
	Acked            uint64
	SelectorRejected uint64 // deliveries suppressed by selectors
	Expired          uint64
	DroppedOOM       uint64 // deliveries dropped because memory ran out
	DroppedBacklog   uint64 // stored messages dropped at backlog caps
	ForwardedOut     uint64 // messages forwarded to peer brokers
	ForwardedIn      uint64 // messages received from peer brokers
	RefusedConns     uint64

	// Contention observability. ReadLockAcquisitions counts shard-lock
	// acquisitions taken by the publish path purely to read routing
	// indexes — zero on the default snapshot read path, one per topic
	// publish in the LockedReadPath/LegacyLinearScan baselines. The
	// ShardLock* trio meters every frame-processing shard-lock
	// acquisition: how many, how many had to wait, and the total
	// nanoseconds spent waiting.
	ReadLockAcquisitions  uint64
	ShardLockAcquisitions uint64
	ShardLockContended    uint64
	ShardLockWaitNs       uint64

	// Content-based matching index meters. MatchProgramEvals counts
	// compiled predicate evaluations on the topic publish path (one per
	// selector group or buffering durable actually evaluated);
	// MatchIndexCandidates counts candidates the discrimination index
	// emitted; MatchGroupsSkipped counts selector groups the index
	// proved could not match (their subscribers still count into
	// SelectorRejected, keeping that meter mode-independent) and
	// MatchDurablesSkipped the buffering durables likewise proved
	// non-matching. With Config.LinearMatch (or the locked/legacy
	// baselines) the index is not consulted: candidates/skipped stay 0
	// and every group and buffering durable is evaluated.
	MatchProgramEvals    uint64
	MatchIndexCandidates uint64
	MatchGroupsSkipped   uint64
	MatchDurablesSkipped uint64

	// Parallel fan-out / egress-batching meters (fanplan.go).
	// FanoutTasks counts publishes whose fan-out engaged the worker
	// pool (matched targets >= Config.ParallelFanoutThreshold) and
	// FanoutChunks the chunks those tasks were split into;
	// FanoutInlineRuns counts fan-outs the engine executed inline on
	// the publishing goroutine because they stayed below the threshold.
	// EgressFlushes counts batched per-connection emissions (one
	// wire.DeliverBatch handed to Env.Send) and EgressFrames the
	// Deliver frames carried inside them — EgressFrames/EgressFlushes
	// is the average coalescing run length, surfaced as
	// EgressFramesPerFlush on the daemons' /stats. All five are zero in
	// SerialFanout mode and in every serial/locked baseline.
	FanoutTasks      uint64
	FanoutChunks     uint64
	FanoutInlineRuns uint64
	EgressFlushes    uint64
	EgressFrames     uint64
}

// EgressFramesPerFlush reports the average number of Deliver frames per
// batched emission (0 when no batch has been emitted).
func (s Stats) EgressFramesPerFlush() float64 {
	if s.EgressFlushes == 0 {
		return 0
	}
	return float64(s.EgressFrames) / float64(s.EgressFlushes)
}

// statCounters is the atomic backing store for Stats, plus the live
// pending-delivery gauge behind PendingCount.
type statCounters struct {
	connections      atomic.Int64
	peakConnections  atomic.Int64
	pending          atomic.Int64
	published        atomic.Uint64
	delivered        atomic.Uint64
	acked            atomic.Uint64
	selectorRejected atomic.Uint64
	expired          atomic.Uint64
	droppedOOM       atomic.Uint64
	droppedBacklog   atomic.Uint64
	forwardedOut     atomic.Uint64
	forwardedIn      atomic.Uint64
	refusedConns     atomic.Uint64

	readLockAcq        atomic.Uint64
	shardLockAcq       atomic.Uint64
	shardLockContended atomic.Uint64
	shardLockWaitNs    atomic.Uint64

	matchProgramEvals    atomic.Uint64
	matchIndexCandidates atomic.Uint64
	matchGroupsSkipped   atomic.Uint64
	matchDurablesSkipped atomic.Uint64

	fanoutTasks      atomic.Uint64
	fanoutChunks     atomic.Uint64
	fanoutInlineRuns atomic.Uint64
	egressFlushes    atomic.Uint64
	egressFrames     atomic.Uint64
}

// Stats returns a snapshot of broker counters. Shard-safe: callable from
// any goroutine at any time; under concurrent load the fields are
// individually (not mutually) consistent.
func (b *Broker) Stats() Stats {
	return Stats{
		Connections:      int(b.stats.connections.Load()),
		PeakConnections:  int(b.stats.peakConnections.Load()),
		Published:        b.stats.published.Load(),
		Delivered:        b.stats.delivered.Load(),
		Acked:            b.stats.acked.Load(),
		SelectorRejected: b.stats.selectorRejected.Load(),
		Expired:          b.stats.expired.Load(),
		DroppedOOM:       b.stats.droppedOOM.Load(),
		DroppedBacklog:   b.stats.droppedBacklog.Load(),
		ForwardedOut:     b.stats.forwardedOut.Load(),
		ForwardedIn:      b.stats.forwardedIn.Load(),
		RefusedConns:     b.stats.refusedConns.Load(),

		ReadLockAcquisitions:  b.stats.readLockAcq.Load(),
		ShardLockAcquisitions: b.stats.shardLockAcq.Load(),
		ShardLockContended:    b.stats.shardLockContended.Load(),
		ShardLockWaitNs:       b.stats.shardLockWaitNs.Load(),

		MatchProgramEvals:    b.stats.matchProgramEvals.Load(),
		MatchIndexCandidates: b.stats.matchIndexCandidates.Load(),
		MatchGroupsSkipped:   b.stats.matchGroupsSkipped.Load(),
		MatchDurablesSkipped: b.stats.matchDurablesSkipped.Load(),

		FanoutTasks:      b.stats.fanoutTasks.Load(),
		FanoutChunks:     b.stats.fanoutChunks.Load(),
		FanoutInlineRuns: b.stats.fanoutInlineRuns.Load(),
		EgressFlushes:    b.stats.egressFlushes.Load(),
		EgressFrames:     b.stats.egressFrames.Load(),
	}
}

// PendingCount reports unacknowledged deliveries across all
// subscriptions (for tests and monitoring). Shard-safe: the gauge is
// maintained atomically at delivery, acknowledgement and subscription
// teardown.
func (b *Broker) PendingCount() int {
	return int(b.stats.pending.Load())
}

// shareOrClone returns the message to hand to a delivery or backlog
// entry: the frozen message itself on the default zero-copy path, or a
// private deep copy when Config.CloneDeliveries restores the old
// behaviour as a benchmark baseline.
func (b *Broker) shareOrClone(m *message.Message) *message.Message {
	if b.cfg.CloneDeliveries {
		return m.Clone()
	}
	return m
}

// getDeliver acquires a Deliver frame under the ownership rule of
// Config.DisableDeliverPool: pooled when the binding's transport
// consumes each frame exactly once, GC-managed when it may retransmit
// or hold frames (the simulator).
func (b *Broker) getDeliver() *wire.Deliver {
	if b.cfg.DisableDeliverPool {
		return new(wire.Deliver)
	}
	return wire.GetDeliver()
}

// deliverTo sends a message to one subscription, tracking it as pending
// until acknowledged.
func (b *Broker) deliverTo(sub *subscription, m *message.Message) {
	b.deliverCost(sub, m, int64(m.EncodedSize())+b.cfg.MemPerPendingOverhead)
}

// deliverCost is deliverTo with the delivery's memory cost precomputed,
// so a topic fan-out prices the message once instead of per subscriber.
// The frozen message is shared by reference across all deliveries; the
// Deliver frame itself comes from a pool (unless the binding opted out),
// returned by whichever transport consumes it.
//
// Delivery state is guarded by the subscription's leaf lock, not the
// shard lock: the snapshot publish path calls this with no shard lock
// at all, and concurrent publishes to the same subscriber serialize
// here. Keeping env.Send inside the sub.mu hold preserves tag-ordered
// frame emission per subscription. A subscription dropped between
// snapshot load and delivery is detached: skip it, or the allocation
// would leak (nothing would ever free it).
func (b *Broker) deliverCost(sub *subscription, m *message.Message, cost int64) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.detached {
		return
	}
	if b.cfg.MaxPendingPerSub > 0 && len(sub.pending) >= b.cfg.MaxPendingPerSub {
		b.stats.droppedBacklog.Add(1)
		return
	}
	if err := b.env.Alloc(cost); err != nil {
		b.stats.droppedOOM.Add(1)
		return
	}
	sub.nextTag++
	tag := sub.nextTag
	sub.pending[tag] = pendingDelivery{tag: tag, cost: cost}
	b.stats.delivered.Add(1)
	b.stats.pending.Add(1)
	d := b.getDeliver()
	d.SubID, d.Tag, d.Msg = sub.id, tag, b.shareOrClone(m)
	b.env.Send(sub.conn.id, d)
}
