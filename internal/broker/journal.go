// Persistence seam for the destination layer's durable state: durable
// subscriptions (existence + disconnected backlog) and queue backlogs.
// The broker stays storage-agnostic — it emits mutation callbacks
// through the Journal interface (package brokerwal implements it over a
// write-ahead log) and exposes Restore*/Dump* so a recovery layer can
// rebuild and snapshot the same state.
//
// What is durable and what is not: durable-subscription existence,
// their disconnected backlogs, and queue backlogs persist; live
// in-flight deliveries (the per-subscription pending/unacked maps) do
// not — a delivery leaves the durable backlog when delivered, not when
// acknowledged, so messages delivered-but-unacked at crash time are not
// redelivered on restart. Everything else in the broker
// (subscriptions, connections, topics) is connection-scoped and
// legitimately dies with the process.

package broker

import (
	"sort"

	"gridmon/internal/message"
	"gridmon/internal/selector"
)

// Journal observes the broker's durable-state mutations, in the exact
// order they are applied: every callback fires under the destination
// shard's lock (durable callbacks additionally under durableMu), so
// per-destination records are totally ordered with the mutations they
// describe, and an acknowledgement emitted after the mutation (PubAck
// after routeLocal) is emitted after the journal append returns.
//
// Like Forwarder, the implementation must not call back into the
// broker's locked paths from inside a callback.
type Journal interface {
	// DurableSubscribed records durable creation, or recreation with a
	// changed topic/selector (which implies an emptied backlog).
	// Identical reattaches are not journaled — they change nothing.
	DurableSubscribed(name, topic, selector string)
	// DurableUnsubscribed records durable destruction (client
	// Unsubscribe; a mere disconnect keeps the durable buffering).
	DurableUnsubscribed(name string)
	// DurableStored records a message buffered for a disconnected
	// durable. The message is frozen and owned by the broker.
	DurableStored(name string, m *message.Message)
	// DurableFlushed records the backlog handoff to a reconnecting
	// consumer: the entire backlog leaves the store.
	DurableFlushed(name string)
	// QueueStored records a message added to a queue backlog.
	QueueStored(queue string, m *message.Message)
	// QueueDrained records backlog entries delivered to consumers;
	// removed holds their indexes into the pre-drain backlog,
	// ascending.
	QueueDrained(queue string, removed []int)
}

// SetJournal installs the mutation observer. Shard-safe: registration
// is atomic and takes effect for operations that acquire their shard
// lock afterwards. Pass nil to detach.
func (b *Broker) SetJournal(j Journal) {
	if j == nil {
		b.journal.Store(nil)
		return
	}
	b.journal.Store(&j)
}

// loadJournal returns the installed observer, or nil.
func (b *Broker) loadJournal() Journal {
	if p := b.journal.Load(); p != nil {
		return *p
	}
	return nil
}

// ---- Restore API ----
//
// The replay path: a recovery layer feeds journaled mutations back
// through these before the broker accepts connections. They apply the
// same state changes as the journaled operations but never re-journal,
// and there are no live subscriptions yet, so backlogs only accumulate.

// RestoreDurable recreates a durable subscription (or re-points an
// existing one at a new topic/selector, dropping its backlog — the
// recreate-on-change rule, which is the only way two records for one
// name occur).
func (b *Broker) RestoreDurable(name, topic, selSrc string) error {
	sel, err := selector.Parse(selSrc)
	if err != nil {
		return err
	}
	b.durableMu.Lock()
	defer b.durableMu.Unlock()
	d := b.durables[name]
	if d == nil {
		d = &durableState{name: name, topic: topic, sel: sel}
		b.durables[name] = d
		sh := b.shardFor(topic)
		sh.mu.Lock()
		sh.durablesByTopic[topic] = append(sh.durablesByTopic[topic], d)
		b.refreshTopicRoute(sh, topic)
		sh.mu.Unlock()
		return nil
	}
	sh := b.shardFor(d.topic)
	sh.mu.Lock()
	b.freeBacklog(d.backlog)
	d.backlog = nil
	if d.topic != topic {
		oldTopic := d.topic
		b.unindexDurable(sh, d)
		b.refreshTopicRoute(sh, oldTopic)
		sh.mu.Unlock()
		d.topic = topic
		d.sel = sel
		nsh := b.shardFor(topic)
		nsh.mu.Lock()
		nsh.durablesByTopic[topic] = append(nsh.durablesByTopic[topic], d)
		b.refreshTopicRoute(nsh, topic)
		nsh.mu.Unlock()
		return nil
	}
	d.sel = sel
	b.refreshTopicRoute(sh, topic)
	sh.mu.Unlock()
	return nil
}

// RestoreDurableDrop replays a DurableUnsubscribed record.
func (b *Broker) RestoreDurableDrop(name string) {
	b.durableMu.Lock()
	defer b.durableMu.Unlock()
	d := b.durables[name]
	if d == nil {
		return
	}
	sh := b.shardFor(d.topic)
	sh.mu.Lock()
	b.freeBacklog(d.backlog)
	d.backlog = nil
	b.unindexDurable(sh, d)
	b.refreshTopicRoute(sh, d.topic)
	sh.mu.Unlock()
	delete(b.durables, name)
}

// RestoreDurableStore replays a DurableStored record. The message must
// already be decoded; it is frozen here.
func (b *Broker) RestoreDurableStore(name string, m *message.Message) {
	b.durableMu.Lock()
	defer b.durableMu.Unlock()
	d := b.durables[name]
	if d == nil {
		return // a later compaction dropped the durable; tolerated
	}
	m = m.Freeze()
	sh := b.shardFor(d.topic)
	sh.mu.Lock()
	b.storeDurable(d, m, int64(m.EncodedSize())+b.cfg.MemPerPendingOverhead)
	sh.mu.Unlock()
}

// RestoreDurableFlush replays a DurableFlushed record.
func (b *Broker) RestoreDurableFlush(name string) {
	b.durableMu.Lock()
	defer b.durableMu.Unlock()
	d := b.durables[name]
	if d == nil {
		return
	}
	sh := b.shardFor(d.topic)
	sh.mu.Lock()
	b.freeBacklog(d.backlog)
	d.backlog = nil
	sh.mu.Unlock()
}

// RestoreQueueStore replays a QueueStored record.
func (b *Broker) RestoreQueueStore(queue string, m *message.Message) {
	m = m.Freeze()
	sh := b.shardFor(queue)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.queues[queue]
	if q == nil {
		q = &queueState{name: queue}
		sh.queues[queue] = q
	}
	b.enqueue(q, m)
}

// RestoreQueueDrain replays a QueueDrained record: removed indexes
// (ascending, into the current backlog) leave the queue.
func (b *Broker) RestoreQueueDrain(queue string, removed []int) {
	sh := b.shardFor(queue)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.queues[queue]
	if q == nil {
		return
	}
	kept, ri := 0, 0
	for i, sm := range q.backlog {
		if ri < len(removed) && removed[ri] == i {
			ri++
			b.env.Free(sm.cost)
			continue
		}
		q.backlog[kept] = sm
		kept++
	}
	for i := kept; i < len(q.backlog); i++ {
		q.backlog[i] = storedMsg{}
	}
	q.backlog = q.backlog[:kept]
	if len(q.subs) == 0 && len(q.backlog) == 0 {
		delete(sh.queues, queue)
	}
}

// freeBacklog releases the memory charge of a dropped backlog. Shard
// lock held.
func (b *Broker) freeBacklog(backlog []storedMsg) {
	for _, sm := range backlog {
		b.env.Free(sm.cost)
	}
}

// ---- Dump API ----
//
// Snapshot accessors: a recovery layer re-emits the returned state as
// compacted records. Each shard is locked in turn, so the caller must
// be quiescent (no concurrent mutations) for the dump to be a
// consistent cut — the daemons dump only during startup recovery and
// shutdown.

// DurableDump is one durable subscription's persistent state.
type DurableDump struct {
	Name     string
	Topic    string
	Selector string
	Backlog  []*message.Message
}

// QueueDump is one queue's persistent backlog.
type QueueDump struct {
	Name    string
	Backlog []*message.Message
}

// DumpDurables snapshots every durable subscription, sorted by name.
func (b *Broker) DumpDurables() []DurableDump {
	b.durableMu.Lock()
	defer b.durableMu.Unlock()
	out := make([]DurableDump, 0, len(b.durables))
	for name, d := range b.durables {
		sh := b.shardFor(d.topic)
		sh.mu.Lock()
		dd := DurableDump{Name: name, Topic: d.topic, Selector: d.sel.String()}
		for _, sm := range d.backlog {
			dd.Backlog = append(dd.Backlog, sm.msg)
		}
		sh.mu.Unlock()
		out = append(out, dd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DumpQueues snapshots every non-empty queue backlog, sorted by name.
func (b *Broker) DumpQueues() []QueueDump {
	var out []QueueDump
	for _, sh := range b.shards {
		sh.mu.Lock()
		for name, q := range sh.queues {
			if len(q.backlog) == 0 {
				continue
			}
			qd := QueueDump{Name: name}
			for _, sm := range q.backlog {
				qd.Backlog = append(qd.Backlog, sm.msg)
			}
			out = append(out, qd)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
