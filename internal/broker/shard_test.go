package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// Tests for the sharded destination layer. Two obligations:
//
//  1. Equivalence — sharding is a pure partitioning of lock domains, so
//     with a single calling goroutine a sharded broker must produce
//     exactly the frame transcripts, stats, backlogs and heap usage of
//     the serial (single-shard) broker for any operation sequence.
//  2. Safety — with many calling goroutines the broker must stay
//     data-race free and keep its memory accounting balanced. Run under
//     -race (the CI race job covers this package).

// transcript renders a connection's outbound frames into a canonical,
// comparable form.
func transcript(env *fakeEnv, c ConnID) []string {
	var out []string
	for _, f := range env.sent[c] {
		switch v := f.(type) {
		case *wire.Deliver:
			out = append(out, fmt.Sprintf("deliver sub=%d tag=%d id=%s", v.SubID, v.Tag, v.Msg.ID))
		case wire.Deliver:
			out = append(out, fmt.Sprintf("deliver sub=%d tag=%d id=%s", v.SubID, v.Tag, v.Msg.ID))
		default:
			out = append(out, fmt.Sprintf("%T%+v", f, f))
		}
	}
	return out
}

func TestShardOfPartitionsNames(t *testing.T) {
	b, _ := newBroker(t, 0)
	if b.NumShards() != 1 || b.ShardOf("anything") != 0 {
		t.Fatalf("default broker: shards=%d shardOf=%d", b.NumShards(), b.ShardOf("anything"))
	}
	cfg := DefaultConfig("b8")
	cfg.Shards = 8
	b8 := New(newFakeEnv(0), cfg)
	if b8.NumShards() != 8 {
		t.Fatalf("shards = %d, want 8", b8.NumShards())
	}
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		s := b8.ShardOf(fmt.Sprintf("topic-%d", i))
		if s < 0 || s >= 8 {
			t.Fatalf("shard index %d out of range", s)
		}
		seen[s] = true
		if s2 := b8.ShardOf(fmt.Sprintf("topic-%d", i)); s2 != s {
			t.Fatalf("ShardOf not stable: %d then %d", s, s2)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("256 names landed on only %d of 8 shards", len(seen))
	}
	// SerialCore forces a single shard regardless of Shards.
	cfg.SerialCore = true
	if bs := New(newFakeEnv(0), cfg); bs.NumShards() != 1 {
		t.Fatalf("SerialCore broker has %d shards", bs.NumShards())
	}
}

// TestShardedSerialEquivalenceRandomized drives identical randomized
// operation sequences — connection churn, topic/queue/durable
// subscribes, unsubscribes, publishes, partial acks — through a serial
// (SerialCore) broker and an 8-shard broker from one goroutine, then
// requires bit-identical frame transcripts, stats, pending counts and
// heap usage. This is the "sharded == serial" proof the concurrency
// architecture rests on: shards change only which operations may
// overlap, never what any operation does.
func TestShardedSerialEquivalenceRandomized(t *testing.T) {
	selectors := []string{
		"", "TRUE", "1 = 1",
		"id < 50", "id >= 50",
		"name LIKE 'gen-%'", "id BETWEEN 20 AND 60",
		"region IN ('us', 'eu') AND id < 80",
		"not a selector <<", // invalid: rejected identically
	}
	var topics, queues []message.Destination
	for i := 0; i < 10; i++ {
		topics = append(topics, message.Topic(fmt.Sprintf("t%d", i)))
	}
	for i := 0; i < 4; i++ {
		queues = append(queues, message.Queue(fmt.Sprintf("q%d", i)))
	}

	for seed := int64(1); seed <= 6; seed++ {
		envS := newFakeEnv(0)
		cfgS := DefaultConfig("b")
		cfgS.SerialCore = true
		bS := New(envS, cfgS)

		envP := newFakeEnv(0)
		cfgP := DefaultConfig("b")
		cfgP.Shards = 8
		bP := New(envP, cfgP)

		both := func(fn func(b *Broker)) { fn(bS); fn(bP) }
		rng := rand.New(rand.NewSource(seed))

		var open []ConnID
		nextConn := ConnID(0)
		openConn := func() {
			nextConn++
			id := nextConn
			both(func(b *Broker) {
				if err := b.OnConnOpen(id); err != nil {
					t.Fatal(err)
				}
			})
			open = append(open, id)
		}
		openConn() // conn 1 is the dedicated publisher
		pubConn := open[0]

		type subInfo struct {
			conn ConnID
			id   int64
		}
		var live []subInfo
		nextSub := int64(0)
		acked := map[ConnID]int{} // frames of env.sent already acked, per conn

		for op := 0; op < 600; op++ {
			switch r := rng.Intn(20); {
			case r < 1 && len(open) < 12: // open another conn
				openConn()
			case r < 2 && len(open) > 1: // close a non-publisher conn
				i := 1 + rng.Intn(len(open)-1)
				id := open[i]
				open = append(open[:i], open[i+1:]...)
				kept := live[:0]
				for _, s := range live {
					if s.conn != id {
						kept = append(kept, s)
					}
				}
				live = kept
				both(func(b *Broker) { b.OnConnClose(id) })
			case r < 6: // subscribe a topic
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				f := wire.Subscribe{
					SubID:    nextSub,
					Dest:     topics[rng.Intn(len(topics))],
					Selector: selectors[rng.Intn(len(selectors))],
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				live = append(live, subInfo{conn: c, id: nextSub})
			case r < 8: // subscribe a queue
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				f := wire.Subscribe{
					SubID:    nextSub,
					Dest:     queues[rng.Intn(len(queues))],
					Selector: selectors[rng.Intn(5)], // valid only
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				live = append(live, subInfo{conn: c, id: nextSub})
			case r < 9: // durable attach (sometimes immediately destroyed)
				if len(open) < 2 {
					continue
				}
				nextSub++
				c := open[1+rng.Intn(len(open)-1)]
				f := wire.Subscribe{
					SubID:       nextSub,
					Dest:        topics[rng.Intn(3)],
					Selector:    "id < 70",
					Durable:     true,
					DurableName: fmt.Sprintf("dur-%d", rng.Intn(3)),
				}
				both(func(b *Broker) { b.OnFrame(c, f) })
				if rng.Intn(2) == 0 {
					both(func(b *Broker) { b.OnFrame(c, wire.Unsubscribe{SubID: nextSub}) })
				} else {
					live = append(live, subInfo{conn: c, id: nextSub})
				}
			case r < 10: // unsubscribe
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				s := live[i]
				live = append(live[:i], live[i+1:]...)
				both(func(b *Broker) { b.OnFrame(s.conn, wire.Unsubscribe{SubID: s.id}) })
			case r < 12: // ack a batch of this conn's unacked deliveries
				if len(open) < 2 {
					continue
				}
				c := open[1+rng.Intn(len(open)-1)]
				// Derive tags from the serial env's transcript; the
				// sharded broker must have produced the same frames
				// (verified wholesale at the end).
				frames := envS.sent[c]
				tags := map[int64][]int64{}
				n := 0
				for _, f := range frames[acked[c]:] {
					if d, ok := f.(*wire.Deliver); ok {
						tags[d.SubID] = append(tags[d.SubID], d.Tag)
					}
					n++
					if n >= 20 {
						break
					}
				}
				acked[c] += n
				for subID, ts := range tags {
					f := wire.Ack{SubID: subID, Tags: ts}
					both(func(b *Broker) { b.OnFrame(c, f) })
				}
			default: // publish
				id := fmt.Sprintf("m%d", op)
				dest := topics[rng.Intn(len(topics))]
				if rng.Intn(4) == 0 {
					dest = queues[rng.Intn(len(queues))]
				}
				props := map[string]message.Value{
					"id":     message.Int(int32(rng.Intn(100))),
					"name":   message.String([]string{"gen-1", "probe-2"}[rng.Intn(2)]),
					"region": message.String([]string{"us", "eu", "ap"}[rng.Intn(3)]),
				}
				both(func(b *Broker) { publishOn(b, pubConn, id, dest, props) })
			}
		}

		for c := ConnID(1); c <= nextConn; c++ {
			ts, tp := transcript(envS, c), transcript(envP, c)
			if !reflect.DeepEqual(ts, tp) {
				t.Fatalf("seed %d conn %d: serial transcript (%d frames) != sharded (%d frames)",
					seed, c, len(ts), len(tp))
			}
		}
		// Mode-specific meters aside (SerialCore disables the parallel
		// fan-out engine, so its Fanout*/Egress* meters never move),
		// counters must agree exactly.
		if ss, sp := clearLockMeters(bS.Stats()), clearLockMeters(bP.Stats()); ss != sp {
			t.Fatalf("seed %d: serial stats %+v != sharded %+v", seed, ss, sp)
		}
		if bS.PendingCount() != bP.PendingCount() {
			t.Fatalf("seed %d: pending %d != %d", seed, bS.PendingCount(), bP.PendingCount())
		}
		if envS.heap.Used() != envP.heap.Used() {
			t.Fatalf("seed %d: heap %d != %d", seed, envS.heap.Used(), envP.heap.Used())
		}
		if ts, tp := bS.Topics(), bP.Topics(); !reflect.DeepEqual(ts, tp) {
			t.Fatalf("seed %d: topics %v != %v", seed, ts, tp)
		}
	}
}

// raceEnv is a concurrency-safe Env: atomic memory accounting
// (simproc.SharedHeap, which panics on unbalanced frees) and per-conn
// delivery records behind per-conn locks.
type raceEnv struct {
	heap   *simproc.SharedHeap
	native *simproc.SharedHeap

	mu   sync.Mutex
	recs map[ConnID]*deliveryRec

	sent atomic.Uint64
}

type deliveryRec struct {
	mu   sync.Mutex
	tags []wire.Ack // one entry per delivery, ready to feed back
	ids  []string   // delivered message IDs, in arrival order (never reset)
}

func newRaceEnv() *raceEnv {
	return &raceEnv{
		heap:   simproc.NewSharedHeap("race-heap", 0, 0),
		native: simproc.NewSharedHeap("race-native", 0, 0),
		recs:   make(map[ConnID]*deliveryRec),
	}
}

func (e *raceEnv) rec(c ConnID) *deliveryRec {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.recs[c]
	if r == nil {
		r = &deliveryRec{}
		e.recs[c] = r
	}
	return r
}

func (e *raceEnv) Now() int64 { return 0 }
func (e *raceEnv) Send(c ConnID, f wire.Frame) {
	e.sent.Add(1)
	switch d := f.(type) {
	case *wire.Deliver:
		r := e.rec(c)
		r.mu.Lock()
		r.tags = append(r.tags, wire.Ack{SubID: d.SubID, Tags: []int64{d.Tag}})
		r.ids = append(r.ids, d.Msg.ID)
		r.mu.Unlock()
		wire.PutDeliver(d)
	case *wire.DeliverBatch:
		r := e.rec(c)
		r.mu.Lock()
		for _, ent := range d.Entries {
			r.tags = append(r.tags, wire.Ack{SubID: ent.SubID, Tags: []int64{ent.Tag}})
			r.ids = append(r.ids, d.Msg.ID)
		}
		r.mu.Unlock()
		wire.PutDeliverBatch(d)
	}
}
func (e *raceEnv) CloseConn(ConnID)    {}
func (e *raceEnv) AllocConn() error    { return e.native.Alloc(1) }
func (e *raceEnv) FreeConn()           { e.native.Free(1) }
func (e *raceEnv) Alloc(n int64) error { return e.heap.Alloc(n) }
func (e *raceEnv) Free(n int64)        { e.heap.Free(n) }

// drainAcks feeds every recorded delivery of conn c back as an Ack.
func (e *raceEnv) drainAcks(b *Broker, c ConnID) {
	r := e.rec(c)
	r.mu.Lock()
	tags := r.tags
	r.tags = nil
	r.mu.Unlock()
	for i := range tags {
		b.OnFrame(c, &tags[i])
	}
}

// TestConcurrentShardStress runs subscribe/publish/ack/unsubscribe/
// disconnect from 16 goroutines against an 8-shard broker, with stats
// readers running concurrently. Each goroutine owns its connections
// (per-connection frame serialization is the transport contract); the
// destinations are shared, so goroutines meet on every shard. Afterwards
// a sequential sweep releases queue and durable backlogs and the heap
// must balance to zero — SharedHeap panics on any unbalanced free, and
// -race (CI) checks the locking.
func TestConcurrentShardStress(t *testing.T) {
	const workers = 16
	env := newRaceEnv()
	cfg := DefaultConfig("race")
	cfg.Shards = 8
	b := New(env, cfg)

	topics := make([]message.Destination, 8)
	for i := range topics {
		topics[i] = message.Topic(fmt.Sprintf("t%d", i))
	}
	queues := make([]message.Destination, 4)
	for i := range queues {
		queues[i] = message.Queue(fmt.Sprintf("q%d", i))
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent Stats/PendingCount/Topics readers
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = b.Stats()
				_ = b.PendingCount()
				_ = b.Topics()
				_ = b.TopicSubscribers("t0")
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			gen := 0
			newConnID := func() ConnID {
				gen++
				return ConnID(g*100000 + gen)
			}
			c := newConnID()
			if err := b.OnConnOpen(c); err != nil {
				t.Error(err)
				return
			}
			nextSub := int64(0)
			var live []int64
			for op := 0; op < 400; op++ {
				switch r := rng.Intn(10); {
				case r < 3: // subscribe topic (own durable name sometimes)
					nextSub++
					f := wire.Subscribe{SubID: nextSub, Dest: topics[rng.Intn(len(topics))]}
					if rng.Intn(4) == 0 {
						f.Selector = "id < 50"
					}
					if rng.Intn(5) == 0 {
						f.Durable = true
						// Mostly private durable names; sometimes a shared
						// one, whose second attach is rejected — both
						// outcomes must be safe.
						if rng.Intn(3) == 0 {
							f.DurableName = "dur-shared"
						} else {
							f.DurableName = fmt.Sprintf("dur-%d", g)
						}
					}
					b.OnFrame(c, f)
					live = append(live, nextSub)
				case r < 4: // subscribe queue
					nextSub++
					b.OnFrame(c, wire.Subscribe{SubID: nextSub, Dest: queues[rng.Intn(len(queues))]})
					live = append(live, nextSub)
				case r < 5: // unsubscribe
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					b.OnFrame(c, wire.Unsubscribe{SubID: live[i]})
					live = append(live[:i], live[i+1:]...)
				case r < 6: // ack everything delivered so far
					env.drainAcks(b, c)
				case r < 7: // disconnect, reconnect under a fresh id
					b.OnConnClose(c)
					env.drainAcks(b, c) // acks for a dead conn are ignored
					c = newConnID()
					if err := b.OnConnOpen(c); err != nil {
						t.Error(err)
						return
					}
					live = live[:0]
					nextSub = 0
				default: // publish
					m := message.NewText("x")
					m.ID = fmt.Sprintf("m-%d-%d", g, op)
					m.Dest = topics[rng.Intn(len(topics))]
					if rng.Intn(4) == 0 {
						m.Dest = queues[rng.Intn(len(queues))]
					}
					m.SetProperty("id", message.Int(int32(rng.Intn(100))))
					b.OnFrame(c, wire.Publish{Seq: int64(op), Msg: m})
				}
			}
			env.drainAcks(b, c)
			b.OnConnClose(c)
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := b.Stats().Connections; got != 0 {
		t.Fatalf("connections after close: %d", got)
	}

	// Sequential sweep: recreate-and-destroy each durable (frees its
	// backlog), drain each queue and ack the deliveries. The heap must
	// return to exactly zero.
	sweep := ConnID(9_000_000)
	if err := b.OnConnOpen(sweep); err != nil {
		t.Fatal(err)
	}
	subID := int64(0)
	for g := 0; g <= workers; g++ {
		name := fmt.Sprintf("dur-%d", g)
		if g == workers {
			name = "dur-shared"
		}
		subID++
		// A different topic+selector recreates the durable, freeing any
		// buffered backlog; unsubscribing destroys it.
		b.OnFrame(sweep, wire.Subscribe{
			SubID: subID, Dest: message.Topic("sweep"), Selector: "FALSE",
			Durable: true, DurableName: name,
		})
		b.OnFrame(sweep, wire.Unsubscribe{SubID: subID})
	}
	for _, q := range queues {
		subID++
		b.OnFrame(sweep, wire.Subscribe{SubID: subID, Dest: q})
		env.drainAcks(b, sweep)
		b.OnFrame(sweep, wire.Unsubscribe{SubID: subID})
	}
	env.drainAcks(b, sweep)
	b.OnConnClose(sweep)

	if used := env.heap.Used(); used != 0 {
		t.Fatalf("heap not balanced after full teardown: %d bytes live", used)
	}
	if n := b.PendingCount(); n != 0 {
		t.Fatalf("pending count after teardown: %d", n)
	}
	st := b.Stats()
	if st.Delivered < st.Acked {
		t.Fatalf("delivered %d < acked %d", st.Delivered, st.Acked)
	}
	if st.Published == 0 || st.Delivered == 0 {
		t.Fatalf("stress produced no traffic: %+v", st)
	}
}
