// Destination layer, part 4: durable subscriptions. The name → state
// directory lives on the Broker (a durable can be recreated on a topic
// that hashes to a different shard), serialized by durableMu; the state
// itself — backlog, active consumer, by-topic index membership — is
// guarded by the shard of the durable's current topic.

package broker

import (
	"sync"

	"gridmon/internal/message"
	"gridmon/internal/selector"
)

type durableState struct {
	name string
	// topic and sel are rewritten only while the durable is held via
	// durableMu; topic is additionally guarded by mu because a stale
	// snapshot route can carry a store into a durable that has since
	// moved to another topic.
	topic string
	sel   *selector.Selector

	// mu is a leaf lock guarding the buffering state: the lock-free
	// publish path appends to the backlog with no shard lock held.
	// active is written under both the topic shard's lock and mu;
	// holding either is enough to read it.
	mu      sync.Mutex
	active  *subscription // nil while disconnected
	backlog []storedMsg
}

// attachDurable resolves (creating on first use) the durable state for a
// subscription, applying the JMS recreate-on-change rule: a durable
// resubscribed with a different topic or selector drops its backlog and,
// on a topic change, moves to the new topic's shard. It fails when the
// durable name is already active on another subscription (JMS allows one
// active consumer per durable subscription). The caller holds durableMu
// and, on success, sets d.active under the topic shard's lock — until
// then the durable keeps buffering, so no message is lost in between.
func (b *Broker) attachDurable(sub *subscription) (*durableState, bool) {
	d := b.durables[sub.durableName]
	if d == nil {
		d = &durableState{name: sub.durableName, topic: sub.dest.Name, sel: sub.sel}
		b.durables[sub.durableName] = d
		sh := b.shardFor(d.topic)
		b.lockShard(sh)
		sh.durablesByTopic[d.topic] = append(sh.durablesByTopic[d.topic], d)
		if j := b.loadJournal(); j != nil {
			j.DurableSubscribed(d.name, d.topic, d.sel.String())
		}
		b.refreshTopicRoute(sh, d.topic)
		sh.mu.Unlock()
		return d, true
	}
	sh := b.shardFor(d.topic)
	b.lockShard(sh)
	if d.active != nil {
		sh.mu.Unlock()
		return nil, false
	}
	// JMS: changing topic or selector on a durable name recreates it.
	if d.topic != sub.dest.Name || d.sel.String() != sub.sel.String() {
		d.mu.Lock()
		for _, sm := range d.backlog {
			b.env.Free(sm.cost)
		}
		d.backlog = nil
		d.mu.Unlock()
		if d.topic != sub.dest.Name {
			oldTopic := d.topic
			b.unindexDurable(sh, d)
			b.refreshTopicRoute(sh, oldTopic)
			sh.mu.Unlock()
			// Unreachable from any shard index here; only the directory
			// (which we hold via durableMu) still points at d. Stale
			// snapshot routes may still reference it, which is why the
			// topic rewrite happens under d.mu — storeDurable checks it.
			d.mu.Lock()
			d.topic = sub.dest.Name
			d.sel = sub.sel
			d.mu.Unlock()
			nsh := b.shardFor(d.topic)
			b.lockShard(nsh)
			nsh.durablesByTopic[d.topic] = append(nsh.durablesByTopic[d.topic], d)
			if j := b.loadJournal(); j != nil {
				j.DurableSubscribed(d.name, d.topic, d.sel.String())
			}
			b.refreshTopicRoute(nsh, d.topic)
			nsh.mu.Unlock()
			return d, true
		}
		d.sel = sub.sel
		if j := b.loadJournal(); j != nil {
			j.DurableSubscribed(d.name, d.topic, d.sel.String())
		}
		// The published route captured the old selector; rebuild it.
		b.refreshTopicRoute(sh, d.topic)
	}
	sh.mu.Unlock()
	return d, true
}

// unindexDurable removes a durable from its shard's by-topic index,
// preserving the order of the remaining entries. Shard lock held.
func (b *Broker) unindexDurable(sh *shard, d *durableState) {
	ds := sh.durablesByTopic[d.topic]
	for i, od := range ds {
		if od == d {
			copy(ds[i:], ds[i+1:])
			ds[len(ds)-1] = nil // don't pin the dead durable's backlog
			ds = ds[:len(ds)-1]
			break
		}
	}
	if len(ds) == 0 {
		delete(sh.durablesByTopic, d.topic)
	} else {
		sh.durablesByTopic[d.topic] = ds
	}
}

// storeDurable buffers a message for a disconnected durable subscriber,
// under the durable's leaf lock (the snapshot publish path stores with
// no shard lock held). The re-checks guard the RCU races: a consumer
// that attached after the caller's route was built owns delivery now,
// and a recreate that moved the durable to another topic must not
// receive a stale old-topic message. On the locked paths both
// conditions were already verified under the shard lock, so the checks
// never fire there and behaviour is unchanged.
func (b *Broker) storeDurable(d *durableState, m *message.Message, cost int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.active != nil || d.topic != m.Dest.Name {
		return
	}
	if b.cfg.MaxDurableBacklog > 0 && len(d.backlog) >= b.cfg.MaxDurableBacklog {
		b.stats.droppedBacklog.Add(1)
		return
	}
	if err := b.env.Alloc(cost); err != nil {
		b.stats.droppedOOM.Add(1)
		return
	}
	d.backlog = append(d.backlog, storedMsg{msg: b.shareOrClone(m), cost: cost})
	if j := b.loadJournal(); j != nil {
		j.DurableStored(d.name, m)
	}
}
