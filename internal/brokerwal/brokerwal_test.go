package brokerwal_test

import (
	"fmt"
	"strings"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/brokerwal"
	"gridmon/internal/message"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
	"gridmon/internal/wire"
)

// nopEnv satisfies broker.Env with unlimited resources and no output
// capture — these tests only care about the broker's durable state.
type nopEnv struct{}

func (nopEnv) Now() int64                     { return 0 }
func (nopEnv) Send(broker.ConnID, wire.Frame) {}
func (nopEnv) CloseConn(broker.ConnID)        {}
func (nopEnv) AllocConn() error               { return nil }
func (nopEnv) FreeConn()                      {}
func (nopEnv) Alloc(int64) error              { return nil }
func (nopEnv) Free(int64)                     {}

func newBroker() *broker.Broker {
	return broker.New(nopEnv{}, broker.DefaultConfig("test"))
}

func topic(name string) message.Destination {
	return message.Destination{Kind: message.TopicKind, Name: name}
}

func queue(name string) message.Destination {
	return message.Destination{Kind: message.QueueKind, Name: name}
}

func openConn(t *testing.T, b *broker.Broker, id broker.ConnID) {
	t.Helper()
	if err := b.OnConnOpen(id); err != nil {
		t.Fatalf("open conn %d: %v", id, err)
	}
	b.OnFrame(id, wire.Connect{ClientID: fmt.Sprintf("c%d", id)})
}

func publish(b *broker.Broker, id broker.ConnID, dest message.Destination, seq int64, text string) {
	m := message.NewText(text)
	m.Dest = dest
	b.OnFrame(id, wire.Publish{Seq: seq, Msg: m})
}

// fingerprint renders the broker's persistent state — durables with
// backlogs, queue backlogs — as a canonical string for equality checks.
func fingerprint(b *broker.Broker) string {
	var sb strings.Builder
	for _, dd := range b.DumpDurables() {
		fmt.Fprintf(&sb, "D %s %s [%s]\n", dd.Name, dd.Topic, dd.Selector)
		for _, m := range dd.Backlog {
			fmt.Fprintf(&sb, "  %x\n", wire.MarshalMessage(nil, m))
		}
	}
	for _, qd := range b.DumpQueues() {
		fmt.Fprintf(&sb, "Q %s\n", qd.Name)
		for _, m := range qd.Backlog {
			fmt.Fprintf(&sb, "  %x\n", wire.MarshalMessage(nil, m))
		}
	}
	return sb.String()
}

// driveMixedLoad exercises every journaled mutation: durable create,
// disconnected buffering, backlog flush on reconnect, unsubscribe,
// queue backlog growth and partial drain.
func driveMixedLoad(t *testing.T, b *broker.Broker) {
	t.Helper()
	// d1: created, disconnected, buffers two messages.
	openConn(t, b, 1)
	b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: topic("alerts"), Durable: true, DurableName: "d1"})
	b.OnConnClose(1)
	openConn(t, b, 2)
	publish(b, 2, topic("alerts"), 1, "a1")
	publish(b, 2, topic("alerts"), 2, "a2")

	// d2: created, buffers one, reconnects (flush), disconnects again,
	// buffers one more — the survivor.
	openConn(t, b, 3)
	b.OnFrame(3, wire.Subscribe{SubID: 1, Dest: topic("metrics"), Durable: true, DurableName: "d2"})
	b.OnConnClose(3)
	publish(b, 2, topic("metrics"), 3, "m1")
	openConn(t, b, 4)
	b.OnFrame(4, wire.Subscribe{SubID: 1, Dest: topic("metrics"), Durable: true, DurableName: "d2"})
	b.OnConnClose(4)
	publish(b, 2, topic("metrics"), 4, "m2")

	// d3: created then destroyed by Unsubscribe — must not survive.
	openConn(t, b, 5)
	b.OnFrame(5, wire.Subscribe{SubID: 7, Dest: topic("gone"), Durable: true, DurableName: "d3"})
	b.OnFrame(5, wire.Unsubscribe{SubID: 7})
	b.OnConnClose(5)

	// Queue q1: three stored, then a consumer drains them all and
	// disconnects before two more arrive.
	publish(b, 2, queue("jobs"), 5, "j1")
	publish(b, 2, queue("jobs"), 6, "j2")
	publish(b, 2, queue("jobs"), 7, "j3")
	openConn(t, b, 6)
	b.OnFrame(6, wire.Subscribe{SubID: 1, Dest: queue("jobs")})
	b.OnConnClose(6)
	publish(b, 2, queue("jobs"), 8, "j4")
	publish(b, 2, queue("jobs"), 9, "j5")
	b.OnConnClose(2)
}

func wantMixedLoadState(t *testing.T, b *broker.Broker) {
	t.Helper()
	dds := b.DumpDurables()
	if len(dds) != 2 || dds[0].Name != "d1" || dds[1].Name != "d2" {
		t.Fatalf("durables = %+v, want d1, d2", dds)
	}
	if len(dds[0].Backlog) != 2 {
		t.Errorf("d1 backlog = %d messages, want 2", len(dds[0].Backlog))
	}
	if len(dds[1].Backlog) != 1 {
		t.Errorf("d2 backlog = %d messages, want 1 (flush must have cleared m1)", len(dds[1].Backlog))
	}
	qds := b.DumpQueues()
	if len(qds) != 1 || qds[0].Name != "jobs" || len(qds[0].Backlog) != 2 {
		t.Fatalf("queues = %+v, want jobs with 2 messages", qds)
	}
}

// TestReplayEquivalence journals a mixed load, crashes (no clean
// shutdown, unsynced data kept — the kindest crash), and checks the
// recovered broker's state is exactly the original's.
func TestReplayEquivalence(t *testing.T) {
	fsys := walfs.NewMem()
	b := newBroker()
	p, info, err := brokerwal.Open(fsys, wal.Options{}, b)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info.Records != 0 {
		t.Fatalf("fresh open replayed %d records", info.Records)
	}
	driveMixedLoad(t, b)
	wantMixedLoadState(t, b)
	want := fingerprint(b)
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b2 := newBroker()
	p2, info, err := brokerwal.Open(fsys, wal.Options{}, b2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if info.Records == 0 {
		t.Fatal("reopen replayed nothing")
	}
	if info.CleanStart {
		t.Fatal("reopen claimed a clean start after a plain Close")
	}
	wantMixedLoadState(t, b2)
	if got := fingerprint(b2); got != want {
		t.Errorf("recovered state differs:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestCleanShutdownRoundtrip closes cleanly and checks the reopen is a
// clean start (no segment scan) with identical state, and that the
// compaction snapshot alone carries everything.
func TestCleanShutdownRoundtrip(t *testing.T) {
	fsys := walfs.NewMem()
	b := newBroker()
	p, _, err := brokerwal.Open(fsys, wal.Options{}, b)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveMixedLoad(t, b)
	want := fingerprint(b)
	if err := p.CloseClean(); err != nil {
		t.Fatalf("close clean: %v", err)
	}

	b2 := newBroker()
	p2, info, err := brokerwal.Open(fsys, wal.Options{}, b2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if !info.CleanStart {
		t.Error("reopen after CloseClean should be a clean start")
	}
	if got := fingerprint(b2); got != want {
		t.Errorf("recovered state differs:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRecoveryChain runs load → crash → recover three times over the
// same log, with small segments forcing rotation, verifying state
// carries across generations and the open-time compaction snapshot
// doesn't lose or duplicate anything.
func TestRecoveryChain(t *testing.T) {
	fsys := walfs.NewMem()
	var want string
	for round := 0; round < 3; round++ {
		b := newBroker()
		p, _, err := brokerwal.Open(fsys, wal.Options{SegmentBytes: 256}, b)
		if err != nil {
			t.Fatalf("round %d open: %v", round, err)
		}
		if round > 0 {
			if got := fingerprint(b); got != want {
				t.Fatalf("round %d recovered state differs:\ngot:\n%swant:\n%s", round, got, want)
			}
		}
		// Each round adds one more buffered message to a per-round durable.
		id := broker.ConnID(round*10 + 1)
		openConn(t, b, id)
		b.OnFrame(id, wire.Subscribe{SubID: 1, Dest: topic("t"), Durable: true,
			DurableName: fmt.Sprintf("d%d", round)})
		b.OnConnClose(id)
		pubID := broker.ConnID(round*10 + 2)
		openConn(t, b, pubID)
		for i := 0; i < 5; i++ {
			publish(b, pubID, topic("t"), int64(i), fmt.Sprintf("r%d-%d", round, i))
		}
		b.OnConnClose(pubID)
		want = fingerprint(b)
		if err := p.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
	b := newBroker()
	p, _, err := brokerwal.Open(fsys, wal.Options{SegmentBytes: 256}, b)
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	defer p.Close()
	if got := fingerprint(b); got != want {
		t.Errorf("final state differs:\ngot:\n%swant:\n%s", got, want)
	}
	if n := len(b.DumpDurables()); n != 3 {
		t.Errorf("got %d durables, want 3", n)
	}
}

// TestCrashPointPrefix drives a fixed append-only load through a
// fault-injecting fs that fails at every possible I/O operation in
// turn, then recovers from what reached the synced prefix and asserts
// the durable's backlog is always a strict prefix of the published
// sequence — never a gap, never a reorder, never an invention.
func TestCrashPointPrefix(t *testing.T) {
	const msgs = 8
	drive := func(b *broker.Broker) {
		openConn(t, b, 1)
		b.OnFrame(1, wire.Subscribe{SubID: 1, Dest: topic("t"), Durable: true, DurableName: "d"})
		b.OnConnClose(1)
		openConn(t, b, 2)
		for i := 0; i < msgs; i++ {
			publish(b, 2, topic("t"), int64(i), fmt.Sprintf("m%d", i))
		}
		b.OnConnClose(2)
	}

	// Probe: count the I/O ops of a full fault-free run.
	probe := walfs.NewFault(walfs.NewMem(), 1<<30, 0)
	{
		b := newBroker()
		p, _, err := brokerwal.Open(probe, wal.Options{Fsync: true, SegmentBytes: 512}, b)
		if err != nil {
			t.Fatalf("probe open: %v", err)
		}
		drive(b)
		_ = p.Close()
	}
	totalOps := probe.Ops()
	if totalOps < msgs {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for failAt := 1; failAt <= totalOps; failAt++ {
		for _, torn := range []int{0, 3} {
			mem := walfs.NewMem()
			fault := walfs.NewFault(mem, failAt, torn)
			b := newBroker()
			p, _, err := brokerwal.Open(fault, wal.Options{Fsync: true, SegmentBytes: 512}, b)
			if err != nil {
				// Injected during the initial (empty) open — nothing to
				// recover, nothing to check.
				continue
			}
			drive(b)
			_ = p.Close()
			mem.Crash()

			b2 := newBroker()
			p2, _, err := brokerwal.Open(mem, wal.Options{Fsync: true, SegmentBytes: 512}, b2)
			if err != nil {
				t.Fatalf("failAt=%d torn=%d: recovery failed: %v", failAt, torn, err)
			}
			dds := b2.DumpDurables()
			if len(dds) > 1 {
				t.Fatalf("failAt=%d torn=%d: %d durables, want ≤1", failAt, torn, len(dds))
			}
			if len(dds) == 1 {
				for i, m := range dds[0].Backlog {
					if got, want := m.Text(), fmt.Sprintf("m%d", i); got != want {
						t.Fatalf("failAt=%d torn=%d: backlog[%d] = %q, want %q (prefix violated)",
							failAt, torn, i, got, want)
					}
				}
				if len(dds[0].Backlog) > msgs {
					t.Fatalf("failAt=%d torn=%d: backlog longer than published", failAt, torn)
				}
			}
			_ = p2.Close()
		}
	}
}

// TestQueueDrainReplay checks the drain record path specifically: a
// selective consumer removes a strict subset of the backlog (middle
// elements), and recovery reproduces exactly the remainder.
func TestQueueDrainReplay(t *testing.T) {
	fsys := walfs.NewMem()
	b := newBroker()
	p, _, err := brokerwal.Open(fsys, wal.Options{}, b)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	openConn(t, b, 1)
	for i := 0; i < 6; i++ {
		m := message.NewText(fmt.Sprintf("j%d", i))
		m.Dest = queue("q")
		m.SetProperty("pick", message.Long(int64(i%2)))
		b.OnFrame(1, wire.Publish{Seq: int64(i), Msg: m})
	}
	// A consumer that only matches odd entries drains j1, j3, j5.
	openConn(t, b, 2)
	b.OnFrame(2, wire.Subscribe{SubID: 1, Dest: queue("q"), Selector: "pick = 1"})
	b.OnConnClose(2)
	b.OnConnClose(1)
	want := fingerprint(b)
	qds := b.DumpQueues()
	if len(qds) != 1 || len(qds[0].Backlog) != 3 {
		t.Fatalf("queues after drain = %+v, want q with 3 messages", qds)
	}
	_ = p.Close()

	b2 := newBroker()
	p2, _, err := brokerwal.Open(fsys, wal.Options{}, b2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if got := fingerprint(b2); got != want {
		t.Errorf("recovered state differs:\ngot:\n%swant:\n%s", got, want)
	}
	for i, m := range b2.DumpQueues()[0].Backlog {
		if got, want := m.Text(), fmt.Sprintf("j%d", i*2); got != want {
			t.Errorf("backlog[%d] = %q, want %q", i, got, want)
		}
	}
}
