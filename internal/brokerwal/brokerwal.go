// Package brokerwal persists a broker core's durable state — durable
// subscriptions, their disconnected backlogs, and queue backlogs —
// through the segmented write-ahead log in package wal. It is the glue
// between two seams that know nothing of each other: broker.Journal
// (mutation callbacks fired under the broker's shard locks) on one
// side, wal.Log (group-committed CRC-framed records over a walfs
// backend) on the other.
//
// Open replays the log into a quiescent broker via the Restore API,
// compacts what it replayed into a fresh snapshot, and attaches itself
// as the broker's journal. Snapshot records are re-emitted operations
// in the same encoding as live journal records, so recovery is one
// decode path regardless of where a record came from.
//
// Locking: journal callbacks append to the log from inside broker shard
// locks, which is safe because wal.Append only touches the log's own
// writer machinery. The reverse direction — Snapshot and CloseClean
// dump broker state while the log's writer is parked — would deadlock
// against a concurrent mutation blocked in Append, so both require the
// broker to be quiescent; the daemons call them only during startup
// recovery and after the listener has closed.
package brokerwal

import (
	"fmt"
	"sync"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
	"gridmon/internal/wire"
)

// Record encoding: one op byte, then wal/codec fields. Messages ride in
// their wire encoding (wire.MarshalMessage) as the record's final field,
// so they need no length prefix.
const (
	opDurableSub   = 1 // name, topic, selector
	opDurableUnsub = 2 // name
	opDurableStore = 3 // name, message
	opDurableFlush = 4 // name
	opQueueStore   = 5 // queue, message
	opQueueDrain   = 6 // queue, count, indexes (ascending uvarints)
)

// Persister implements broker.Journal over a wal.Log. Callback methods
// are safe for concurrent use (different shards journal concurrently);
// Snapshot, CloseClean and Close require broker quiescence.
type Persister struct {
	log *wal.Log
	b   *broker.Broker
}

// encPool recycles record-encode buffers across journal callbacks, the
// same pooling idiom as the jms writer's encode buffers.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Open recovers broker state from the log directory and wires the
// persister in: replay every journaled mutation through the broker's
// Restore API, compact the result into a fresh snapshot (so startup
// cost does not accrue across restarts), and attach the persister as
// the broker's journal. The broker must be quiescent — not yet serving
// connections — for the duration of the call; jms.NewServerRestored's
// callback is the intended site.
func Open(fsys walfs.FS, opts wal.Options, b *broker.Broker) (*Persister, wal.RecoverInfo, error) {
	p := &Persister{b: b}
	log, info, err := wal.Open(fsys, opts, p.apply)
	if err != nil {
		return nil, info, err
	}
	p.log = log
	if info.Records > 0 && !info.CleanStart {
		if err := log.Snapshot(p.dump); err != nil {
			_ = log.Close()
			return nil, info, err
		}
	}
	b.SetJournal(p)
	return p, info, nil
}

// Stats proxies the log's counters.
func (p *Persister) Stats() wal.Stats { return p.log.Stats() }

// Err reports the log's poisoning error, if any I/O has failed.
func (p *Persister) Err() error { return p.log.Err() }

// CloseClean detaches from the broker, snapshots its durable state and
// installs the clean-shutdown marker, letting the next Open skip the
// replay scan. Requires quiescence (call after the server has closed).
func (p *Persister) CloseClean() error {
	p.b.SetJournal(nil)
	return p.log.CloseClean(p.dump)
}

// Close detaches and releases the log without marking it clean; the
// next Open replays as after a crash.
func (p *Persister) Close() error {
	p.b.SetJournal(nil)
	return p.log.Close()
}

// append encodes nothing itself — it ships a pooled buffer the caller
// filled to the log and recycles it. Append errors are swallowed here:
// the first one poisons the log, the daemons surface it via Err and the
// stats endpoints, and the broker (which cannot unwind a mutation that
// already happened) keeps serving from memory.
func (p *Persister) append(buf *[]byte) {
	_ = p.log.Append(*buf)
	*buf = (*buf)[:0]
	encPool.Put(buf)
}

func (p *Persister) DurableSubscribed(name, topic, selector string) {
	bp := encPool.Get().(*[]byte)
	b := append(*bp, opDurableSub)
	b = wal.AppendString(b, name)
	b = wal.AppendString(b, topic)
	*bp = wal.AppendString(b, selector)
	p.append(bp)
}

func (p *Persister) DurableUnsubscribed(name string) {
	bp := encPool.Get().(*[]byte)
	*bp = wal.AppendString(append(*bp, opDurableUnsub), name)
	p.append(bp)
}

func (p *Persister) DurableStored(name string, m *message.Message) {
	bp := encPool.Get().(*[]byte)
	b := wal.AppendString(append(*bp, opDurableStore), name)
	*bp = wire.MarshalMessage(b, m)
	p.append(bp)
}

func (p *Persister) DurableFlushed(name string) {
	bp := encPool.Get().(*[]byte)
	*bp = wal.AppendString(append(*bp, opDurableFlush), name)
	p.append(bp)
}

func (p *Persister) QueueStored(queue string, m *message.Message) {
	bp := encPool.Get().(*[]byte)
	b := wal.AppendString(append(*bp, opQueueStore), queue)
	*bp = wire.MarshalMessage(b, m)
	p.append(bp)
}

func (p *Persister) QueueDrained(queue string, removed []int) {
	bp := encPool.Get().(*[]byte)
	b := wal.AppendString(append(*bp, opQueueDrain), queue)
	b = wal.AppendUvarint(b, uint64(len(removed)))
	for _, idx := range removed {
		b = wal.AppendUvarint(b, uint64(idx))
	}
	*bp = b
	p.append(bp)
}

// apply replays one record — live-journaled or snapshot-compacted —
// into the broker.
func (p *Persister) apply(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("brokerwal: empty record")
	}
	d := wal.NewDec(rec[1:])
	switch rec[0] {
	case opDurableSub:
		name, topic, sel := d.String(), d.String(), d.String()
		if err := d.Err(); err != nil {
			return err
		}
		return p.b.RestoreDurable(name, topic, sel)
	case opDurableUnsub:
		name := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		p.b.RestoreDurableDrop(name)
	case opDurableFlush:
		name := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		p.b.RestoreDurableFlush(name)
	case opDurableStore:
		name := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		m, err := wire.UnmarshalMessage(d.Rest())
		if err != nil {
			return err
		}
		p.b.RestoreDurableStore(name, m)
	case opQueueStore:
		queue := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		m, err := wire.UnmarshalMessage(d.Rest())
		if err != nil {
			return err
		}
		p.b.RestoreQueueStore(queue, m)
	case opQueueDrain:
		queue := d.String()
		n := d.Uvarint()
		if n > uint64(len(d.Rest())) { // each index costs ≥1 byte
			return fmt.Errorf("brokerwal: drain count %d exceeds record", n)
		}
		removed := make([]int, 0, n)
		for i := uint64(0); i < n; i++ {
			removed = append(removed, int(d.Uvarint()))
		}
		if err := d.Err(); err != nil {
			return err
		}
		p.b.RestoreQueueDrain(queue, removed)
	default:
		return fmt.Errorf("brokerwal: unknown op %d", rec[0])
	}
	return nil
}

// dump re-emits the broker's durable state as compacted records for a
// snapshot: each durable's identity then its backlog in order, then
// every queue backlog. Requires broker quiescence (see package doc).
func (p *Persister) dump(emit func(rec []byte) error) error {
	for _, dd := range p.b.DumpDurables() {
		b := wal.AppendString([]byte{opDurableSub}, dd.Name)
		b = wal.AppendString(b, dd.Topic)
		if err := emit(wal.AppendString(b, dd.Selector)); err != nil {
			return err
		}
		for _, m := range dd.Backlog {
			b := wal.AppendString([]byte{opDurableStore}, dd.Name)
			if err := emit(wire.MarshalMessage(b, m)); err != nil {
				return err
			}
		}
	}
	for _, qd := range p.b.DumpQueues() {
		for _, m := range qd.Backlog {
			b := wal.AppendString([]byte{opQueueStore}, qd.Name)
			if err := emit(wire.MarshalMessage(b, m)); err != nil {
				return err
			}
		}
	}
	return nil
}
