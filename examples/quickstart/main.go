// Quickstart: one broker, one publisher, one subscriber with a JMS
// selector, on the deterministic simulator. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gridmon"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/wire"
)

func main() {
	s := gridmon.NewSimulation(1)
	broker := s.NewBroker("broker")

	sub, err := broker.Connect(s.Node("laptop"), simbroker.TCP(), "subscriber")
	if err != nil {
		panic(err)
	}
	pub, err := broker.Connect(s.Node("laptop"), simbroker.TCP(), "publisher")
	if err != nil {
		panic(err)
	}

	sub.OnDeliver = func(d wire.Deliver) {
		power, _ := d.Msg.MapGet("power")
		rtt := s.Kernel().Now() - sim.Time(d.Msg.Timestamp)
		fmt.Printf("[%8v] received %s: power=%s  (round trip %v)\n",
			s.Now(), d.Msg.ID, power.AsString(), rtt)
	}
	// Subscribe with the paper's selector: it filters nothing but is
	// evaluated per message, like a real deployment's would be.
	sub.Subscribe(1, message.Topic("power.monitoring"), "id < 10000")

	for i := 1; i <= 3; i++ {
		i := i
		s.Kernel().At(sim.Time(i)*sim.Second, func() {
			m := message.NewMap()
			m.Dest = message.Topic("power.monitoring")
			m.SetProperty("id", message.Int(int32(i)))
			m.MapSet("power", message.Double(480.0+float64(i)))
			pub.Publish(m)
		})
	}

	s.RunUntilIdle()
	fmt.Printf("done: %v\n", s)
}
