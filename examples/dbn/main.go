// Dbn: a three-broker Distributed Broker Network compared under the two
// routing modes — the v1.1.3-style broadcast flood the paper found
// deficient, and the tree (interest-pruned) routing it anticipated.
// Run with:
//
//	go run ./examples/dbn
package main

import (
	"fmt"

	"gridmon"
	"gridmon/internal/brokernet"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/wire"
)

func run(mode brokernet.RoutingMode) {
	s := gridmon.NewSimulation(11)
	hosts := s.NewBrokerNetwork(mode, "b1", "b2", "b3")
	client := s.Node("client")

	// Subscriber only at the far end of the chain.
	sub, err := hosts[2].Connect(client, simbroker.TCP(), "sub")
	if err != nil {
		panic(err)
	}
	received := 0
	var lastRTT sim.Time
	sub.OnDeliver = func(d wire.Deliver) {
		received++
		lastRTT = s.Kernel().Now() - sim.Time(d.Msg.Timestamp)
	}
	sub.Subscribe(1, message.Topic("power"), "id<10000")

	// Publisher at the near end; plus a topic nobody subscribes to.
	pub, err := hosts[0].Connect(client, simbroker.TCP(), "pub")
	if err != nil {
		panic(err)
	}
	for i := 0; i < 50; i++ {
		i := i
		s.Kernel().At(sim.Time(i+1)*sim.Second, func() {
			m := message.NewMap()
			m.Dest = message.Topic("power")
			m.SetProperty("id", message.Int(int32(i)))
			m.MapSet("power", message.Double(500))
			pub.Publish(m)
			// Chatter on an unsubscribed topic: broadcast mode floods it
			// across the network anyway; tree mode prunes it.
			n := message.NewText("noise")
			n.Dest = message.Topic("unwatched")
			pub.Publish(n)
		})
	}

	s.RunUntilIdle()
	fmt.Printf("%-10v received=%d  last RTT=%v\n", mode, received, lastRTT)
	for i, h := range hosts {
		sent, rcvd, pruned := h.Member().Stats()
		fmt.Printf("  b%d forwards: sent=%d received=%d pruned=%d\n", i+1, sent, rcvd, pruned)
	}
}

func main() {
	fmt.Println("== broadcast routing (NaradaBrokering v1.1.3 behaviour) ==")
	run(brokernet.RoutingBroadcast)
	fmt.Println()
	fmt.Println("== tree routing (interest-pruned) ==")
	run(brokernet.RoutingTree)
}
