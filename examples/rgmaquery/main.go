// Rgmaquery: the R-GMA virtual database — generators publish tuples with
// SQL INSERT, and three consumers show the continuous, latest and history
// query types with content-based WHERE filtering. Run with:
//
//	go run ./examples/rgmaquery
package main

import (
	"fmt"

	"gridmon"
	"gridmon/internal/rgma"
	"gridmon/internal/sim"
)

func main() {
	s := gridmon.NewSimulation(3)
	dep := s.NewRGMA("server")
	dep.CreateTable(rgma.MonitoringTable())
	psvc := dep.AddProducerService(s.Node("server"))
	csvc := dep.AddConsumerService(s.Node("server"))
	client := s.Node("client")

	// Continuous query with a predicate: only generator 1's tuples.
	cont, err := dep.CreateConsumer(client, csvc,
		"SELECT * FROM generator WHERE genid = 1", rgma.ContinuousQuery, 0)
	if err != nil {
		panic(err)
	}
	sub := rgma.StartSubscriber(cont)
	sub.OnTuple = func(t rgma.StreamedTuple, at sim.Time) {
		fmt.Printf("[%8v] continuous: genid=%s seq=%s power=%s (latency %v)\n",
			at.Duration(), t.Row[0], t.Row[1], t.Row[4], (at - t.SentAt).Duration())
	}

	// Two producers inserting every 10 s after a warm-up.
	for g := 1; g <= 2; g++ {
		g := g
		pp, err := dep.CreatePrimaryProducer(client, psvc, "generator", 30*sim.Second, 2*sim.Minute)
		if err != nil {
			panic(err)
		}
		for i := 1; i <= 4; i++ {
			seq := int64(i)
			s.Kernel().At(sim.Time(10+10*i)*sim.Second, func() {
				pp.Insert(rgma.MonitoringRow(g, seq))
			})
		}
	}

	// A latest query at t=60s sees one row per generator; a history
	// query sees everything still retained.
	latest, err := dep.CreateConsumer(client, csvc, "SELECT * FROM generator", rgma.LatestQuery, 0)
	if err != nil {
		panic(err)
	}
	history, err := dep.CreateConsumer(client, csvc, "SELECT * FROM generator", rgma.HistoryQuery, 0)
	if err != nil {
		panic(err)
	}
	s.Kernel().At(60*sim.Second, func() {
		latest.Pop(func(rows []rgma.StreamedTuple) {
			fmt.Printf("latest query: %d rows (one per generator)\n", len(rows))
			for _, r := range rows {
				fmt.Printf("  genid=%s latest seq=%s\n", r.Row[0], r.Row[1])
			}
		})
		history.Pop(func(rows []rgma.StreamedTuple) {
			fmt.Printf("history query: %d rows retained\n", len(rows))
		})
	})

	s.Kernel().RunUntil(2 * sim.Minute)
	sub.Stop()
	fmt.Printf("continuous subscriber received %d tuples, mean latency %.0f ms\n",
		sub.Received(), sub.RTT().Mean())
}
