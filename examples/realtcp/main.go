// Realtcp: the same broker core that the simulator validates, served
// over real TCP sockets — an in-process naradad server, a subscriber
// with a selector, and a publisher, all on loopback. Run with:
//
//	go run ./examples/realtcp
package main

import (
	"fmt"
	"sync"
	"time"

	"gridmon/internal/gridgen"
	"gridmon/internal/jms"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
)

func main() {
	srv, err := jms.ListenAndServe("127.0.0.1:0", jms.ServerConfig{})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("broker listening on %s\n", srv.Addr())

	sub, err := jms.Dial(srv.Addr(), "monitor")
	if err != nil {
		panic(err)
	}
	defer sub.Close()

	var mu sync.Mutex
	var rtt metrics.RTT
	done := make(chan struct{})
	const want = 20
	if _, err := sub.Subscribe(message.Topic("power.monitoring"), gridgen.PaperSelector, func(m *message.Message) {
		ms := float64(time.Now().UnixNano()-m.Timestamp) / 1e6
		mu.Lock()
		rtt.Add(ms)
		n := rtt.Count()
		mu.Unlock()
		if n == want {
			close(done)
		}
	}); err != nil {
		panic(err)
	}

	pub, err := jms.Dial(srv.Addr(), "generator")
	if err != nil {
		panic(err)
	}
	defer pub.Close()
	for i := 1; i <= want; i++ {
		m := gridgen.MonitoringMessage(7, int64(i))
		m.Dest = message.Topic("power.monitoring")
		if err := pub.PublishSync(m); err != nil {
			panic(err)
		}
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		panic("timed out waiting for deliveries")
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("received %d messages over real TCP\n", rtt.Count())
	fmt.Printf("mean RTT %.3f ms, max %.3f ms\n", rtt.Mean(), rtt.Max())
	st := srv.Stats()
	fmt.Printf("broker stats: published=%d delivered=%d acked=%d\n", st.Published, st.Delivered, st.Acked)
}
