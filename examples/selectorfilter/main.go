// Selectorfilter: content-based filtering with JMS message selectors —
// one operations console subscribes only to alarms from high-power
// generators in a named region, while an archiver takes everything.
// Run with:
//
//	go run ./examples/selectorfilter
package main

import (
	"fmt"

	"gridmon"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/wire"
)

func main() {
	s := gridmon.NewSimulation(7)
	broker := s.NewBroker("broker")
	node := s.Node("ops")

	console, err := broker.Connect(node, simbroker.TCP(), "console")
	if err != nil {
		panic(err)
	}
	archiver, err := broker.Connect(node, simbroker.TCP(), "archiver")
	if err != nil {
		panic(err)
	}
	feed, err := broker.Connect(node, simbroker.TCP(), "feed")
	if err != nil {
		panic(err)
	}

	console.OnDeliver = func(d wire.Deliver) {
		site, _ := d.Msg.Property("site")
		power, _ := d.Msg.Property("power")
		fmt.Printf("console ALARM: site=%s power=%s\n", site.AsString(), power.AsString())
	}
	archived := 0
	archiver.OnDeliver = func(wire.Deliver) { archived++ }

	// The console wants only serious events from the Scottish region;
	// the archiver records everything.
	console.Subscribe(1, message.Topic("telemetry"),
		"status = 'ALARM' AND power > 400 AND site LIKE 'scotland-%'")
	archiver.Subscribe(1, message.Topic("telemetry"), "")

	samples := []struct {
		site   string
		status string
		power  float64
	}{
		{"scotland-01", "RUNNING", 480},
		{"scotland-02", "ALARM", 520}, // matches
		{"wales-07", "ALARM", 610},    // wrong region
		{"scotland-03", "ALARM", 120}, // too little power
		{"scotland-04", "ALARM", 455}, // matches
	}
	for i, sm := range samples {
		sm := sm
		s.Kernel().At(sim.Time(i+1)*sim.Second, func() {
			m := message.NewMap()
			m.Dest = message.Topic("telemetry")
			m.SetProperty("site", message.String(sm.site))
			m.SetProperty("status", message.String(sm.status))
			m.SetProperty("power", message.Double(sm.power))
			m.MapSet("power", message.Double(sm.power))
			feed.Publish(m)
		})
	}

	s.RunUntilIdle()
	st := broker.Broker().Stats()
	fmt.Printf("archiver stored %d messages; selector rejected %d console deliveries\n",
		archived, st.SelectorRejected)
}
