// Powergrid: the paper's headline scenario — 750 simulated power
// generators on one client machine publishing monitoring data every 10
// seconds through a single broker, with the receiving program measuring
// round-trip statistics. Run with:
//
//	go run ./examples/powergrid
package main

import (
	"fmt"

	"gridmon"
	"gridmon/internal/gridgen"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
)

func main() {
	s := gridmon.NewSimulation(2007)
	broker := s.NewBroker("hydra1")
	broker.StartSampler(5 * sim.Second)
	client := s.Node("hydra2")

	mon, err := gridgen.StartMonitor(s.Kernel(), gridgen.MonitorConfig{
		Host:      broker,
		Node:      client,
		Transport: simbroker.TCP(),
		Topics:    []string{"power.monitoring"},
	})
	if err != nil {
		panic(err)
	}

	fleet := gridgen.StartFleet(s.Kernel(), gridgen.FleetConfig{
		Generators:    750,
		SpawnInterval: 500 * sim.Millisecond,
		WarmupMin:     10 * sim.Second,
		WarmupMax:     20 * sim.Second,
		Period:        10 * sim.Second,
		PublishCount:  30, // five minutes of monitoring per generator
		Transport:     simbroker.TCP(),
		TopicFor:      func(int) string { return "power.monitoring" },
		HostFor:       func(int) *simbroker.Host { return broker },
		NodeFor:       func(int) *simnet.Node { return client },
	})

	s.Kernel().RunUntil(fleet.EndTime() + 30*sim.Second)

	rtt := mon.RTT()
	fmt.Printf("generators:     %d (refused %d)\n", fleet.Connected(), fleet.Refused())
	fmt.Printf("published:      %d\n", fleet.Published())
	fmt.Printf("received:       %d\n", mon.Received())
	fmt.Printf("mean RTT:       %.2f ms\n", rtt.Mean())
	fmt.Printf("stddev:         %.2f ms\n", rtt.Stddev())
	fmt.Printf("95th pct:       %.2f ms\n", rtt.Percentile(95))
	fmt.Printf("99th pct:       %.2f ms\n", rtt.Percentile(99))
	fmt.Printf("max:            %.2f ms\n", rtt.Max())
	fmt.Printf("broker CPU idle: %.1f%%\n", broker.Sampler().MeanIdle()*100)
	fmt.Printf("broker memory:  %.1f MB\n", float64(broker.Node().Heap.Consumption())/(1<<20))

	// The paper's soft real-time requirement: data within 5 seconds,
	// fewer than 0.5% delayed.
	within := rtt.Percentile(99.5) <= 5000
	fmt.Printf("soft real-time requirement (99.5%% within 5 s): %v\n", within)
}
