package gridmon

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// DBN routing benchmarks: the same publish workload through a broker
// network under broadcast (the paper's v1.1.3 flood) and tree
// (interest-pruned) routing. ns/publish covers forwarding plus every
// remote delivery; forwards/op and pruned/op expose how much wire work
// each mode performs.
//
// `go test -bench DBNForward .` runs the matrix;
// `BENCH_DBN_OUT=BENCH_dbn.json go test -run TestWriteDBNBench .`
// writes the checked-in comparison file.

// dbnQueuedFrame is one in-flight inter-broker frame of the bench net.
type dbnQueuedFrame struct {
	to, from string
	f        wire.Frame
}

// dbnNet is a single-threaded in-process broker network with queued
// (asynchronous, per the LinkSender contract) links and an explicit
// pump, so a benchmark iteration drives one publish to quiescence.
type dbnNet struct {
	members map[string]*brokernet.Member
	envs    map[string]*parEnv
	queue   []dbnQueuedFrame
}

func newDBNNet(mode brokernet.RoutingMode, links [][2]string, ids ...string) *dbnNet {
	tn := &dbnNet{members: make(map[string]*brokernet.Member), envs: make(map[string]*parEnv)}
	for _, id := range ids {
		env := &parEnv{recs: make(map[broker.ConnID]*parConnRec)}
		tn.envs[id] = env
		tn.members[id] = brokernet.NewMember(broker.New(env, broker.DefaultConfig(id)), mode)
	}
	for _, l := range links {
		a, b := l[0], l[1]
		tn.members[a].AddPeer(b, func(f wire.Frame) {
			tn.queue = append(tn.queue, dbnQueuedFrame{to: b, from: a, f: f})
		})
		tn.members[b].AddPeer(a, func(f wire.Frame) {
			tn.queue = append(tn.queue, dbnQueuedFrame{to: a, from: b, f: f})
		})
	}
	tn.pump()
	return tn
}

func (tn *dbnNet) pump() {
	for i := 0; i < len(tn.queue); i++ {
		q := tn.queue[i]
		tn.members[q.to].OnPeerFrame(q.from, q.f)
	}
	tn.queue = tn.queue[:0]
}

// dbnScenario is one benchmark topology + placement.
type dbnScenario struct {
	name  string
	links [][2]string
	ids   []string
	// subAt names the brokers with one subscriber each on the topic.
	subAt []string
	pubAt string
}

var dbnScenarios = []dbnScenario{
	{
		// The paper's star: hub publishes, one leaf subscribes. Tree
		// routing prunes the two uninterested leaves; broadcast floods
		// all three.
		name:  "star4/sub-at-1-leaf",
		links: [][2]string{{"hub", "l1"}, {"hub", "l2"}, {"hub", "l3"}},
		ids:   []string{"hub", "l1", "l2", "l3"},
		subAt: []string{"l1"},
		pubAt: "hub",
	},
	{
		// Chatter on a topic nobody watches: broadcast still pays three
		// forwards per publish, tree pays none.
		name:  "star4/unwatched",
		links: [][2]string{{"hub", "l1"}, {"hub", "l2"}, {"hub", "l3"}},
		ids:   []string{"hub", "l1", "l2", "l3"},
		subAt: nil,
		pubAt: "hub",
	},
	{
		// The experiment chain: publisher and subscriber at opposite
		// ends, every message transits the middle broker in both modes.
		name:  "chain3/far-sub",
		links: [][2]string{{"b1", "b2"}, {"b2", "b3"}},
		ids:   []string{"b1", "b2", "b3"},
		subAt: []string{"b3"},
		pubAt: "b1",
	},
}

// runDBNForward drives b.N publishes through the scenario and reports
// forwarding counters per publish.
func runDBNForward(b *testing.B, sc dbnScenario, mode brokernet.RoutingMode) {
	tn := newDBNNet(mode, sc.links, sc.ids...)
	const topic = "power.monitoring"
	subConn := broker.ConnID(100)
	for _, id := range sc.subAt {
		br := tn.members[id].Broker()
		tn.envs[id].recs[subConn] = &parConnRec{}
		if err := br.OnConnOpen(subConn); err != nil {
			b.Fatal(err)
		}
		br.OnFrame(subConn, wire.Subscribe{SubID: 1, Dest: message.Topic(topic)})
	}
	tn.pump()
	pubConn := broker.ConnID(200)
	pb := tn.members[sc.pubAt].Broker()
	if err := pb.OnConnOpen(pubConn); err != nil {
		b.Fatal(err)
	}

	// drainAcks feeds recorded deliveries back as acks so broker-side
	// pending state stays flat across iterations.
	var scratch []parAckPair
	var ack wire.Ack
	drainAcks := func() {
		for _, id := range sc.subAt {
			r := tn.envs[id].recs[subConn]
			r.mu.Lock()
			scratch = append(scratch[:0], r.pairs...)
			r.pairs = r.pairs[:0]
			r.mu.Unlock()
			br := tn.members[id].Broker()
			for _, pr := range scratch {
				ack.SubID = pr.sub
				ack.Tags = append(ack.Tags[:0], pr.tag)
				br.OnFrame(subConn, &ack)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := parMessage(topic, i)
		pb.OnFrame(pubConn, wire.Publish{Seq: int64(i), Msg: m})
		tn.pump()
		drainAcks()
	}
	b.StopTimer()
	var sent, pruned uint64
	for _, id := range sc.ids {
		s, _, p := tn.members[id].Stats()
		sent += s
		pruned += p
	}
	b.ReportMetric(float64(sent)/float64(b.N), "forwards/op")
	b.ReportMetric(float64(pruned)/float64(b.N), "pruned/op")
}

func BenchmarkDBNForward(b *testing.B) {
	for _, sc := range dbnScenarios {
		for _, mode := range []brokernet.RoutingMode{brokernet.RoutingBroadcast, brokernet.RoutingTree} {
			sc, mode := sc, mode
			b.Run(fmt.Sprintf("%s/%s", sc.name, mode), func(b *testing.B) {
				runDBNForward(b, sc, mode)
			})
		}
	}
}

// dbnResult is one row of BENCH_dbn.json.
type dbnResult struct {
	Scenario       string  `json:"scenario"`
	Mode           string  `json:"mode"`
	NsPerPublish   float64 `json:"ns_per_publish"`
	ForwardsPerOp  float64 `json:"forwarded_frames_per_publish"`
	PrunedPerOp    float64 `json:"pruned_forwards_per_publish"`
	AllocsPerOp    float64 `json:"allocs_per_publish"`
	PublishesPerSs float64 `json:"publishes_per_sec"`
}

// TestWriteDBNBench times broadcast vs tree routing across the DBN
// scenarios and writes BENCH_dbn.json. Gated behind an env var so the
// regular test run stays fast: BENCH_DBN_OUT=BENCH_dbn.json go test
// -run TestWriteDBNBench .
func TestWriteDBNBench(t *testing.T) {
	out := os.Getenv("BENCH_DBN_OUT")
	if out == "" {
		t.Skip("set BENCH_DBN_OUT to write the DBN benchmark file")
	}
	var results []dbnResult
	for _, sc := range dbnScenarios {
		for _, mode := range []brokernet.RoutingMode{brokernet.RoutingBroadcast, brokernet.RoutingTree} {
			sc, mode := sc, mode
			r := testing.Benchmark(func(b *testing.B) { runDBNForward(b, sc, mode) })
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			row := dbnResult{
				Scenario:       sc.name,
				Mode:           mode.String(),
				NsPerPublish:   ns,
				ForwardsPerOp:  r.Extra["forwards/op"],
				PrunedPerOp:    r.Extra["pruned/op"],
				AllocsPerOp:    float64(r.AllocsPerOp()),
				PublishesPerSs: 1e9 / ns,
			}
			results = append(results, row)
			t.Logf("%s/%s: %.0f ns/publish, %.1f forwards/op, %.1f pruned/op",
				sc.name, mode, ns, row.ForwardsPerOp, row.PrunedPerOp)
		}
	}
	buf, err := json.MarshalIndent(map[string]any{
		"benchmark": "DBN forwarding: broadcast flood vs interest-pruned tree routing",
		"description": "One publish driven to quiescence through an in-process broker network per op, including " +
			"every remote delivery and ack. forwards/op counts BrokerForward frames crossing links; tree routing " +
			"should eliminate them entirely on unwatched topics and prune uninterested star leaves.",
		"host_cpus": runtime.NumCPU(),
		"results":   results,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
