module gridmon

go 1.24
