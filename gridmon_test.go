package gridmon

import (
	"strings"
	"testing"
	"time"

	"gridmon/internal/brokernet"
	"gridmon/internal/message"
	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/wire"
)

func TestSimulationNodesAndClock(t *testing.T) {
	s := NewSimulation(1)
	a := s.Node("hydra1")
	if s.Node("hydra1") != a {
		t.Fatal("Node not idempotent")
	}
	s.Run(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	if !strings.Contains(s.String(), "nodes=1") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestFacadePubSub(t *testing.T) {
	s := NewSimulation(2)
	host := s.NewBroker("broker")
	sub, err := host.Connect(s.Node("client"), simbroker.TCP(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := host.Connect(s.Node("client"), simbroker.TCP(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	sub.OnDeliver = func(wire.Deliver) { got++ }
	sub.Subscribe(1, message.Topic("power"), "id < 10000")
	s.Kernel().After(sim.Second, func() {
		m := message.NewMap()
		m.Dest = message.Topic("power")
		m.SetProperty("id", message.Int(7))
		m.MapSet("power", message.Double(1.5))
		pub.Publish(m)
	})
	s.RunUntilIdle()
	if got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
}

func TestFacadeBrokerNetwork(t *testing.T) {
	s := NewSimulation(3)
	hosts := s.NewBrokerNetwork(brokernet.RoutingTree, "b1", "b2", "b3")
	if len(hosts) != 3 {
		t.Fatal("wrong host count")
	}
	sub, err := hosts[2].Connect(s.Node("client"), simbroker.TCP(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := hosts[0].Connect(s.Node("client"), simbroker.TCP(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	sub.OnDeliver = func(wire.Deliver) { got++ }
	sub.Subscribe(1, message.Topic("t"), "")
	s.Kernel().After(sim.Second, func() {
		m := message.NewText("x")
		m.Dest = message.Topic("t")
		pub.Publish(m)
	})
	s.RunUntilIdle()
	if got != 1 {
		t.Fatalf("cross-network deliveries = %d", got)
	}
}

func TestFacadeBrokerNetworkTooSmallPanics(t *testing.T) {
	s := NewSimulation(4)
	defer func() {
		if recover() == nil {
			t.Fatal("single-node network did not panic")
		}
	}()
	s.NewBrokerNetwork(brokernet.RoutingTree, "only")
}

func TestFacadeRGMA(t *testing.T) {
	s := NewSimulation(5)
	dep := s.NewRGMA("server")
	dep.CreateTable(rgma.MonitoringTable())
	psvc := dep.AddProducerService(s.Node("server"))
	csvc := dep.AddConsumerService(s.Node("server"))
	cons, err := dep.CreateConsumer(s.Node("client"), csvc, "SELECT * FROM generator", rgma.ContinuousQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	subsc := rgma.StartSubscriber(cons)
	pp, err := dep.CreatePrimaryProducer(s.Node("client"), psvc, "generator", 30*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s.Kernel().At(15*sim.Second, func() { pp.Insert(rgma.MonitoringRow(1, 1)) })
	s.Run(2 * time.Minute)
	subsc.Stop()
	if subsc.Received() != 1 {
		t.Fatalf("received = %d", subsc.Received())
	}
}

func TestDeterminismAcrossFacade(t *testing.T) {
	run := func() string {
		s := NewSimulation(42)
		host := s.NewBroker("b")
		sub, _ := host.Connect(s.Node("c"), simbroker.TCP(), "sub")
		pub, _ := host.Connect(s.Node("c"), simbroker.TCP(), "pub")
		var last sim.Time
		sub.OnDeliver = func(wire.Deliver) { last = s.Kernel().Now() }
		sub.Subscribe(1, message.Topic("t"), "")
		for i := 0; i < 20; i++ {
			s.Kernel().After(sim.Time(i)*sim.Second, func() {
				m := message.NewText("x")
				m.Dest = message.Topic("t")
				pub.Publish(m)
			})
		}
		s.RunUntilIdle()
		return last.String()
	}
	if run() != run() {
		t.Fatal("facade runs nondeterministic")
	}
}
